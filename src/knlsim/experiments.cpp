#include "knlsim/experiments.hpp"

#include <cmath>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"

namespace mc::knlsim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

const char* kPaperBasis = "6-31G(d)";

std::string fmt_gb(double bytes) { return fmt_double(bytes / kGiB, 2); }
}  // namespace

const Workload& ExperimentContext::workload(const std::string& dataset) {
  auto it = cache_.find(dataset);
  if (it == cache_.end()) {
    chem::Molecule mol = chem::builders::paper_dataset(dataset);
    auto wl = std::make_unique<Workload>(mol, kPaperBasis, calib_.host_eri);
    it = cache_.emplace(dataset, std::move(wl)).first;
  }
  return *it->second;
}

Table table2_memory_footprint() {
  using core::ScfAlgorithm;
  Table t({"Dataset", "# atoms", "# BFs", "MPI (GB)", "Pr.F. (GB)",
           "Sh.F. (GB)", "MPI/Pr.F.", "MPI/Sh.F."});
  const core::NodeLayout mpi{256, 1};
  const core::NodeLayout hybrid{4, 64};
  for (const std::string& name : chem::builders::paper_dataset_names()) {
    const std::size_t natoms = chem::builders::paper_dataset_natoms(name);
    const std::size_t nbf = natoms * 15;  // 6-31G(d) carbon: 15 BFs/atom
    const double m_mpi =
        core::model_bytes_per_node(ScfAlgorithm::kMpiOnly, nbf, mpi);
    const double m_pr =
        core::model_bytes_per_node(ScfAlgorithm::kPrivateFock, nbf, hybrid);
    const double m_sh =
        core::model_bytes_per_node(ScfAlgorithm::kSharedFock, nbf, hybrid);
    t.add_row({name, std::to_string(natoms), std::to_string(nbf),
               fmt_gb(m_mpi), fmt_gb(m_pr), fmt_gb(m_sh),
               fmt_double(m_mpi / m_pr, 1), fmt_double(m_mpi / m_sh, 1)});
  }
  return t;
}

Table table4_dataset_characteristics() {
  Table t({"Name", "# atoms", "# shells", "# basis functions"});
  for (const std::string& name : chem::builders::paper_dataset_names()) {
    chem::Molecule mol = chem::builders::paper_dataset(name);
    auto bs = basis::BasisSet::build(mol, kPaperBasis);
    t.add_row({name, std::to_string(mol.natoms()),
               std::to_string(bs.nshells_gamess()),
               std::to_string(bs.nbf())});
  }
  return t;
}

Table figure3_affinity(ExperimentContext& ctx) {
  const Workload& wl = ctx.workload("1.0nm");
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  Table t({"Threads/rank", "none (s)", "compact (s)", "scatter (s)",
           "balanced (s)"});
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{std::to_string(threads)};
    for (Affinity aff : {Affinity::kNone, Affinity::kCompact,
                         Affinity::kScatter, Affinity::kBalanced}) {
      SimConfig cfg;
      cfg.algorithm = ScfAlgorithm::kSharedFock;
      cfg.nodes = 1;
      cfg.ranks_per_node = 4;
      cfg.threads_per_rank = threads;
      cfg.affinity = aff;
      const SimResult r = sim.run(cfg);
      row.push_back(r.feasible ? fmt_double(r.seconds, 1) : "n/a");
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table figure4_single_node(ExperimentContext& ctx) {
  const Workload& wl = ctx.workload("1.0nm");
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  Table t({"HW threads", "MPI-only (s)", "private Fock (s)",
           "shared Fock (s)"});
  for (int hw : {4, 8, 16, 32, 64, 128, 256}) {
    std::vector<std::string> row{std::to_string(hw)};
    {
      SimConfig cfg;
      cfg.algorithm = ScfAlgorithm::kMpiOnly;
      cfg.ranks_per_node = hw;  // request hw ranks; memory may cap it
      const SimResult r = sim.run(cfg);
      // Report n/a when the requested rank count cannot actually run
      // (the paper's MPI curve stops at 128 hardware threads).
      row.push_back((r.feasible && r.ranks_per_node == hw)
                        ? fmt_double(r.seconds, 1)
                        : "n/a (memory)");
    }
    for (ScfAlgorithm alg :
         {ScfAlgorithm::kPrivateFock, ScfAlgorithm::kSharedFock}) {
      SimConfig cfg;
      cfg.algorithm = alg;
      cfg.ranks_per_node = 4;
      cfg.threads_per_rank = std::max(1, hw / 4);
      const SimResult r = sim.run(cfg);
      row.push_back(r.feasible ? fmt_double(r.seconds, 1) : "n/a (memory)");
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table figure5_modes(ExperimentContext& ctx, const std::string& dataset) {
  const Workload& wl = ctx.workload(dataset);
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  Table t({"Cluster mode", "Memory mode", "MPI-only (s)",
           "private Fock (s)", "shared Fock (s)"});
  for (ClusterMode cm : {ClusterMode::kAllToAll, ClusterMode::kQuadrant,
                         ClusterMode::kSnc4}) {
    for (MemoryMode mm : {MemoryMode::kCache, MemoryMode::kFlatDdr,
                          MemoryMode::kFlatMcdram}) {
      std::vector<std::string> row{cluster_mode_name(cm),
                                   memory_mode_name(mm)};
      for (ScfAlgorithm alg :
           {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
            ScfAlgorithm::kSharedFock}) {
        SimConfig cfg;
        cfg.algorithm = alg;
        cfg.nodes = 1;
        cfg.cluster_mode = cm;
        cfg.memory_mode = mm;
        const SimResult r = sim.run(cfg);
        row.push_back(r.feasible ? fmt_double(r.seconds, 1)
                                 : "n/a (memory)");
      }
      t.add_row(std::move(row));
    }
  }
  return t;
}

Table figure6_table3_multinode(ExperimentContext& ctx) {
  const Workload& wl = ctx.workload("2.0nm");
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  Table t({"# Nodes", "MPI (s)", "Pr.F. (s)", "Sh.F. (s)", "MPI eff (%)",
           "Pr.F. eff (%)", "Sh.F. eff (%)"});

  const int base_nodes = 4;
  std::map<core::ScfAlgorithm, SimResult> base;
  for (int nodes : {4, 16, 64, 128, 256, 512}) {
    std::vector<std::string> times, effs;
    for (ScfAlgorithm alg :
         {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
          ScfAlgorithm::kSharedFock}) {
      SimConfig cfg;
      cfg.algorithm = alg;
      cfg.nodes = nodes;
      const SimResult r = sim.run(cfg);
      MC_CHECK(r.feasible, "2.0 nm must be feasible for all codes");
      if (nodes == base_nodes) base[alg] = r;
      times.push_back(fmt_double(r.seconds, 0));
      effs.push_back(fmt_double(r.efficiency_vs(base[alg], base_nodes, nodes), 0));
    }
    t.add_row({std::to_string(nodes), times[0], times[1], times[2], effs[0],
               effs[1], effs[2]});
  }
  return t;
}

Table figure7_large_scale(ExperimentContext& ctx) {
  const Workload& wl = ctx.workload("5.0nm");
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  Table t({"# Nodes", "shared Fock (s)", "speedup vs 256", "MPI-only",
           "private Fock"});
  SimResult base;
  for (int nodes : {256, 512, 1000, 1500, 2000, 2500, 3000}) {
    SimConfig cfg;
    cfg.algorithm = ScfAlgorithm::kSharedFock;
    cfg.nodes = nodes;
    const SimResult r = sim.run(cfg);
    MC_CHECK(r.feasible, "5.0 nm must be feasible for shared Fock");
    if (nodes == 256) base = r;

    // The other two codes: report why they cannot run this dataset.
    SimConfig mpi_cfg = cfg;
    mpi_cfg.algorithm = ScfAlgorithm::kMpiOnly;
    const SimResult r_mpi = sim.run(mpi_cfg);
    SimConfig pr_cfg = cfg;
    pr_cfg.algorithm = ScfAlgorithm::kPrivateFock;
    pr_cfg.threads_per_rank = 64;
    const SimResult r_pr = sim.run(pr_cfg);

    const std::string mpi_status =
        (!r_mpi.feasible || r_mpi.ranks_per_node < 32)
            ? "impractical (memory)"
            : fmt_double(r_mpi.seconds, 0);
    t.add_row({std::to_string(nodes), fmt_double(r.seconds, 1),
               fmt_double(base.seconds / r.seconds, 2), mpi_status,
               r_pr.feasible ? fmt_double(r_pr.seconds, 0)
                             : "infeasible (memory)"});
  }
  return t;
}

Table figure8_dist_fock_projection(ExperimentContext& ctx) {
  using core::ScfAlgorithm;
  const Workload& wl = ctx.workload("5.0nm");
  Simulator sim(wl, ctx.machine(), ctx.calibration());
  const double mcdram = 16.0 * kGiB;
  Table t({"# Nodes", "dist GB/node", "fits MCDRAM", "dist (s)",
           "shared Fock (s)"});
  for (int nodes : {256, 512, 1000, 1500, 2000, 2500, 3000}) {
    SimConfig cfg;
    cfg.algorithm = ScfAlgorithm::kDistFock;
    cfg.nodes = nodes;
    const SimResult r = sim.run(cfg);
    MC_CHECK(r.feasible, "5.0 nm must be feasible for dist Fock");
    const double gb = core::model_dist_fock_bytes_per_node(
        wl.nbf(), {r.ranks_per_node, 1}, nodes);

    SimConfig sh_cfg = cfg;
    sh_cfg.algorithm = ScfAlgorithm::kSharedFock;
    const SimResult r_sh = sim.run(sh_cfg);

    t.add_row({std::to_string(nodes), fmt_gb(gb),
               gb <= mcdram ? "yes" : "no", fmt_double(r.seconds, 1),
               r_sh.feasible ? fmt_double(r_sh.seconds, 1)
                             : "n/a (memory)"});
  }
  return t;
}

}  // namespace mc::knlsim
