#include "knlsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mc::knlsim {

EriCostTable EriCostTable::host_default() {
  // Seconds per primitive-pair product for (Lsum_bra x Lsum_ket) quartet
  // classes, measured on the reproduction host with bench_eri_micro on
  // carbon 6-31G(d) shell pairs at the graphene bond length (GCC 12,
  // RelWithDebInfo, 2026-07). The matrix is asymmetric because the MD
  // contraction is factorized bra-outer/ket-inner. Regenerate with
  // bench_eri_micro if the host or compiler changes.
  EriCostTable t{};
  const double m[kNumPairClasses][kNumPairClasses] = {
      // ket:   ss        sp        pp        pd        dd
      {1.00e-8, 5.84e-8, 2.17e-7, 7.42e-7, 2.32e-6},  // bra ss
      {4.35e-8, 2.44e-7, 8.62e-7, 2.97e-6, 9.28e-6},  // bra sp
      {7.65e-8, 4.44e-7, 1.52e-6, 5.68e-6, 2.01e-5},  // bra pp
      {1.19e-7, 9.44e-7, 3.19e-6, 1.38e-5, 4.89e-5},  // bra pd
      {2.40e-7, 2.09e-6, 6.46e-6, 2.90e-5, 1.50e-4},  // bra dd
  };
  for (int b = 0; b < kNumPairClasses; ++b) {
    for (int k = 0; k < kNumPairClasses; ++k) {
      t.s_per_unit[static_cast<std::size_t>(b)][static_cast<std::size_t>(k)] =
          m[b][k];
    }
  }
  return t;
}

double KnlCalibration::effective_bandwidth(const KnlNode& node, MemoryMode m,
                                           double footprint_bytes) const {
  switch (m) {
    case MemoryMode::kFlatDdr:
      return node.ddr_bw;
    case MemoryMode::kFlatMcdram:
      // Caller must have checked capacity; bandwidth is full MCDRAM.
      return node.mcdram_bw;
    case MemoryMode::kCache: {
      if (footprint_bytes <= node.mcdram_bytes) {
        return 0.92 * node.mcdram_bw;  // small direct-mapped conflict tax
      }
      // Direct-mapped L3: miss ratio grows with the over-subscription of
      // MCDRAM; interpolate toward DDR bandwidth.
      const double over = footprint_bytes / node.mcdram_bytes;  // > 1
      const double miss = std::min(1.0, 0.12 * (over - 1.0));
      return (1.0 - miss) * 0.92 * node.mcdram_bw + miss * node.ddr_bw;
    }
  }
  MC_CHECK(false, "unknown memory mode");
  return 0.0;
}

double KnlCalibration::allreduce_seconds(const AriesNetwork& net,
                                         double bytes, int total_ranks,
                                         int ranks_per_node) const {
  if (total_ranks <= 1) return 0.0;
  const double p = total_ranks;
  // Intra-node stages are cheap; charge the network for the inter-node
  // part and shared-memory bandwidth for the local part.
  const int nodes = std::max(1, total_ranks / std::max(1, ranks_per_node));
  const double lat = 2.0 * net.latency_s * std::log2(p);
  const double bw_term =
      2.0 * bytes * (static_cast<double>(nodes - 1) / std::max(1, nodes)) /
      net.node_bandwidth;
  const double local_term =
      2.0 * bytes * (ranks_per_node > 1 ? 1.0 : 0.0) / 50e9;
  return lat + bw_term + local_term;
}

double KnlCalibration::barrier_seconds(int nthreads) const {
  if (nthreads <= 1) return 0.0;
  return barrier_base_s + barrier_log_s * std::log2(nthreads);
}

}  // namespace mc::knlsim
