#pragma once
// Hardware description of the paper's test beds (Table 1):
//  * one Intel Xeon Phi 7210/7230 node: 64 cores at 1.3 GHz, 4 hardware
//    threads/core, 32 tiles with shared L2, 16 GB MCDRAM (~400 GB/s),
//    192 GB DDR4 (~100 GB/s), configurable memory and cluster modes;
//  * Theta: 3,624 such nodes on an Aries dragonfly interconnect.
//
// This environment has one CPU core and no cluster, so scaling results are
// produced by knlsim: an analytic performance model over these parameters,
// driven by the real screened workload (see workload.hpp) and calibrated
// per-quartet costs (cost_model.hpp). DESIGN.md records the substitution.

#include <cstddef>
#include <string>

namespace mc::knlsim {

/// MCDRAM/DDR4 configuration (paper section 5.1).
enum class MemoryMode {
  kCache,        ///< MCDRAM as direct-mapped L3 over DDR4 (paper's choice)
  kFlatDdr,      ///< flat mode, allocations in DDR4
  kFlatMcdram,   ///< flat mode, allocations in MCDRAM (capacity-limited!)
};

/// Tag-directory clustering (paper section 5.1).
enum class ClusterMode {
  kQuadrant,  ///< the paper's choice ("quad-cache" with MemoryMode::kCache)
  kAllToAll,  ///< worst locality
  kSnc4,      ///< sub-NUMA: best locality if ranks align to quadrants
};

/// KMP_AFFINITY thread-placement policies (Figure 3).
enum class Affinity { kNone, kCompact, kScatter, kBalanced };

std::string memory_mode_name(MemoryMode m);
std::string cluster_mode_name(ClusterMode m);
std::string affinity_name(Affinity a);

struct KnlNode {
  int cores = 64;
  int max_threads_per_core = 4;
  double core_ghz = 1.3;
  double mcdram_bytes = 16.0 * (1ull << 30);
  double ddr_bytes = 192.0 * (1ull << 30);
  double mcdram_bw = 400e9;   ///< bytes/s
  double ddr_bw = 100e9;      ///< bytes/s
  /// Fixed per-MPI-process allocation (GAMESS replicated working pool,
  /// code image, MPI buffers). This is what caps the stock code at 128
  /// ranks on a 192 GB node for the 1.0 nm dataset (Figure 4) even though
  /// the matrices alone would fit.
  double fixed_bytes_per_rank = 1.2 * (1ull << 30);

  [[nodiscard]] int hw_threads() const {
    return cores * max_threads_per_core;
  }
  /// Memory capacity usable for rank-replicated data in the given mode.
  [[nodiscard]] double capacity_bytes(MemoryMode m) const {
    return m == MemoryMode::kFlatMcdram ? mcdram_bytes : ddr_bytes;
  }
};

struct AriesNetwork {
  double latency_s = 2.0e-6;        ///< per-hop software+wire latency
  double node_bandwidth = 14e9;     ///< injection bandwidth, bytes/s
};

struct ThetaMachine {
  KnlNode node;
  AriesNetwork network;
  int max_nodes = 3624;
};

}  // namespace mc::knlsim
