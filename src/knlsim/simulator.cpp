#include "knlsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace mc::knlsim {

namespace {

constexpr double kKlIterSeconds = 3.0e-9;  ///< one Schwarz check + dispatch

struct Placement {
  int cores_used = 1;
  int threads_per_core = 1;
  double per_thread_speed = 1.0;  ///< vs one thread alone on one core
};

Placement place_threads(const KnlNode& node, const KnlCalibration& calib,
                        int total_threads, Affinity affinity) {
  Placement p;
  total_threads = std::max(1, total_threads);
  switch (affinity) {
    case Affinity::kCompact: {
      // Fill all hardware threads of a core before the next core.
      p.threads_per_core = std::min(node.max_threads_per_core, total_threads);
      p.cores_used = (total_threads + p.threads_per_core - 1) /
                     p.threads_per_core;
      break;
    }
    case Affinity::kNone:
    case Affinity::kScatter:
    case Affinity::kBalanced: {
      p.cores_used = std::min(total_threads, node.cores);
      p.threads_per_core = (total_threads + node.cores - 1) / node.cores;
      break;
    }
  }
  p.threads_per_core =
      std::min(p.threads_per_core, node.max_threads_per_core);
  p.per_thread_speed =
      calib.smt_yield[static_cast<std::size_t>(p.threads_per_core)] /
      p.threads_per_core;
  if (affinity == Affinity::kNone) {
    p.per_thread_speed *= 0.88;  // OS migration / no pinning
  } else if (affinity == Affinity::kBalanced) {
    p.per_thread_speed *= 1.02;  // siblings share L2 working set
  }
  return p;
}

/// List-scheduling makespan: tasks assigned in claim order to the earliest
/// available worker. Returns (makespan, perfect_split).
std::pair<double, double> makespan(const std::vector<double>& tasks,
                                   int workers) {
  double total = 0.0;
  for (double t : tasks) total += t;
  if (workers <= 1) return {total, total};
  // Min-heap of worker available-times.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  for (int w = 0; w < workers; ++w) heap.push(0.0);
  for (double t : tasks) {
    if (t <= 0.0) continue;
    const double avail = heap.top();
    heap.pop();
    heap.push(avail + t);
  }
  double mk = 0.0;
  while (!heap.empty()) {
    mk = heap.top();
    heap.pop();
  }
  return {mk, total / workers};
}

/// Static block decomposition: worker r owns the contiguous index range
/// [r n / W, (r+1) n / W). Returns (makespan, perfect_split). Ablation of
/// the paper's dynamic load balancing.
std::pair<double, double> makespan_static(const std::vector<double>& tasks,
                                          int workers) {
  double total = 0.0;
  for (double t : tasks) total += t;
  if (workers <= 1) return {total, total};
  const std::size_t n = tasks.size();
  double mk = 0.0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t lo = n * static_cast<std::size_t>(w) /
                           static_cast<std::size_t>(workers);
    const std::size_t hi = n * (static_cast<std::size_t>(w) + 1) /
                           static_cast<std::size_t>(workers);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += tasks[i];
    mk = std::max(mk, sum);
  }
  return {mk, total / workers};
}

}  // namespace

SimResult Simulator::run(const SimConfig& cfg) const {
  const Workload& wl = *wl_;
  const KnlNode& node = machine_.node;
  SimResult res;
  MC_CHECK(cfg.nodes >= 1, "need at least one node");
  MC_CHECK(cfg.nodes <= machine_.max_nodes,
           "node count exceeds the machine");

  const double capacity = node.capacity_bytes(cfg.memory_mode);
  const int hw = node.hw_threads();

  // ---- Resolve the node layout under the memory constraint. ----
  int ranks = cfg.ranks_per_node;
  int threads = cfg.threads_per_rank;
  auto bytes_for = [&](int r, int t) {
    // The dist-Fock footprint shrinks with the *total* rank count (the
    // windows are block-distributed); the replicated models do not.
    const double model =
        cfg.algorithm == ScfAlgorithm::kDistFock
            ? core::model_dist_fock_bytes_per_node(wl.nbf(), {r, 1},
                                                   cfg.nodes)
            : core::model_bytes_per_node(cfg.algorithm, wl.nbf(),
                                         {r, std::max(1, t)});
    return model + node.fixed_bytes_per_rank * r;
  };

  if (cfg.algorithm == ScfAlgorithm::kMpiOnly ||
      cfg.algorithm == ScfAlgorithm::kDistFock) {
    threads = 1;
    if (ranks < 0) ranks = hw;
    while (ranks >= 1 && bytes_for(ranks, 1) > capacity) {
      ranks = (ranks > 1) ? ranks / 2 : 0;
    }
    if (ranks < 1) {
      res.infeasible_reason = "replicated matrices exceed node memory";
      return res;
    }
  } else {
    if (ranks < 0) ranks = 4;  // the paper's hybrid configuration
    if (threads < 0) {
      threads = std::max(1, hw / ranks);
      // Private Fock: thread-replicated matrices may not fit; back off as
      // a user would (this is the 5 nm feasibility story, Figure 7).
      while (threads > 1 && bytes_for(ranks, threads) > capacity) {
        threads /= 2;
      }
    }
    if (bytes_for(ranks, threads) > capacity) {
      res.infeasible_reason = "replicated matrices exceed node memory";
      return res;
    }
  }
  res.ranks_per_node = ranks;
  res.threads_per_rank = threads;

  // ---- Per-thread throughput from placement and SMT yield. ----
  const Placement pl =
      place_threads(node, calib_, ranks * threads, cfg.affinity);

  // ---- Memory & cluster multipliers on the quartet inner loop. ----
  const double stream_bytes =
      cfg.algorithm == ScfAlgorithm::kDistFock
          ? core::model_dist_fock_bytes_per_node(wl.nbf(), {ranks, 1},
                                                 cfg.nodes)
          : core::model_bytes_per_node(cfg.algorithm, wl.nbf(),
                                       {ranks, threads});
  const double bw_eff =
      calib_.effective_bandwidth(node, cfg.memory_mode, stream_bytes);
  const double nominal_bw = 0.92 * node.mcdram_bw;
  const double cluster = calib_.cluster_factor(cfg.cluster_mode);
  double traffic_mult = (nominal_bw / bw_eff) * cluster;
  if (cfg.algorithm == ScfAlgorithm::kSharedFock) {
    // 1/6 of the scatter traffic is the direct shared-F_kl write, which
    // pays the tag-directory penalty in all-to-all mode.
    traffic_mult *=
        (5.0 + calib_.shared_write_penalty(cfg.cluster_mode)) / 6.0;
  }
  if (cfg.algorithm == ScfAlgorithm::kMpiOnly && ranks > 1) {
    // Rank-replicated matrices defeat L2 sharing between the hardware
    // threads of a tile (the paper's cache-utilization argument).
    traffic_mult *=
        1.0 + calib_.replication_l2_tax * std::log2(static_cast<double>(ranks));
  }
  const double mem_mult = (1.0 - calib_.memory_fraction) +
                          calib_.memory_fraction * traffic_mult;

  // host-core seconds -> KNL wall seconds for one cooperating worker.
  double conv = mem_mult / (calib_.knl_core_ratio * pl.per_thread_speed);
  if (cfg.algorithm == ScfAlgorithm::kSharedFock) {
    conv *= 1.0 + calib_.shared_fock_contention * threads;
  }

  const int total_ranks = ranks * cfg.nodes;
  const double barrier = calib_.barrier_seconds(threads) * cluster;
  const double flush_bytes =
      2.0 * static_cast<double>(wl.nbf()) * 6.0 * sizeof(double);
  const double flush_s = flush_bytes / bw_eff + barrier;

  // ---- Build the rank-level task list. ----
  std::vector<double> tasks;
  double uniform_extra = 0.0;  // per-rank costs spread evenly
  double sync_total = 0.0;     // per-rank sync cost (already uniform)
  double flush_total = 0.0;

  switch (cfg.algorithm) {
    case ScfAlgorithm::kMpiOnly: {
      tasks.reserve(wl.pairs().size());
      for (std::size_t p = 0; p < wl.pairs().size(); ++p) {
        const double work = wl.task_cost()[p] * conv;
        const double checks = (static_cast<double>(wl.pairs()[p].idx) + 1) *
                              kKlIterSeconds * conv;
        tasks.push_back(work + checks);
      }
      // Pairs screened out at pair level still burn a DLB claim and their
      // kl screening sweep (Algorithm 1 has no ij prescreen).
      const double ns = static_cast<double>(wl.npairs_total());
      const double surv = static_cast<double>(wl.npairs_surviving());
      const double dead_checks =
          (ns * ns / 2.0 - 0.5 * surv * ns) * kKlIterSeconds * conv;
      uniform_extra +=
          (dead_checks + ns * calib_.dlb_rtt_s) / total_ranks;
      sync_total += ns * calib_.dlb_rtt_s / total_ranks;
      break;
    }
    case ScfAlgorithm::kPrivateFock: {
      tasks.reserve(wl.i_task_cost().size());
      for (std::size_t i = 0; i < wl.i_task_cost().size(); ++i) {
        const double work = wl.i_task_cost()[i] * conv / threads;
        const double checks =
            wl.i_task_kl_iters()[i] * kKlIterSeconds * conv / threads;
        tasks.push_back(work + checks + barrier + calib_.dlb_rtt_s);
      }
      sync_total += static_cast<double>(wl.nshells()) *
                    (barrier + calib_.dlb_rtt_s) / total_ranks;
      // End-of-build reduction of T thread-private copies.
      const double n2bytes =
          static_cast<double>(wl.nbf()) * wl.nbf() * sizeof(double);
      flush_total += 2.0 * n2bytes / bw_eff;
      break;
    }
    case ScfAlgorithm::kSharedFock: {
      tasks.reserve(wl.pairs().size());
      for (std::size_t p = 0; p < wl.pairs().size(); ++p) {
        const double work = wl.task_cost()[p] * conv / threads;
        const double checks = (static_cast<double>(wl.pairs()[p].idx) + 1) *
                              kKlIterSeconds * conv / threads;
        const double over = 2.0 * barrier + flush_s + calib_.dlb_rtt_s;
        tasks.push_back(work + checks + over);
        flush_total += flush_s / total_ranks;
        sync_total += (2.0 * barrier + calib_.dlb_rtt_s) / total_ranks;
      }
      // Prescreened ij pairs still cost a claim + barrier on some rank.
      const double dead = static_cast<double>(wl.npairs_total()) -
                          static_cast<double>(wl.npairs_surviving());
      uniform_extra += dead * (calib_.dlb_rtt_s + barrier) / total_ranks;
      sync_total += dead * (calib_.dlb_rtt_s + barrier) / total_ranks;
      break;
    }
    case ScfAlgorithm::kDistFock: {
      // Algorithm 4 (this repo): the MPI-only pair loop -- single-threaded
      // ranks, same DLB claims and kl sweeps -- but the N^2 gsumf is
      // replaced by one-sided window traffic. Each rank streams about
      // 2 N^2 / N_ranks doubles of density tiles in (cached, and half
      // hidden behind the ERI pipeline by the claim-ahead prefetch) and
      // accs the same volume of F panels out.
      tasks.reserve(wl.pairs().size());
      for (std::size_t p = 0; p < wl.pairs().size(); ++p) {
        const double work = wl.task_cost()[p] * conv;
        const double checks = (static_cast<double>(wl.pairs()[p].idx) + 1) *
                              kKlIterSeconds * conv;
        tasks.push_back(work + checks);
      }
      const double ns = static_cast<double>(wl.npairs_total());
      const double surv = static_cast<double>(wl.npairs_surviving());
      const double dead_checks =
          (ns * ns / 2.0 - 0.5 * surv * ns) * kKlIterSeconds * conv;
      uniform_extra += (dead_checks + ns * calib_.dlb_rtt_s) / total_ranks;
      sync_total += ns * calib_.dlb_rtt_s / total_ranks;
      const double win_bytes = 2.0 * static_cast<double>(wl.nbf()) *
                               wl.nbf() * sizeof(double) / total_ranks;
      flush_total += (2.0 - 0.5) * win_bytes / bw_eff;  // half the gets hide
      break;
    }
  }

  auto [mk, perfect] = cfg.dynamic_load_balance
                           ? makespan(tasks, total_ranks)
                           : makespan_static(tasks, total_ranks);

  // Global DLB counter throughput floor: every claim serializes on one
  // remote atomic (only binds at extreme rank counts).
  const double counter_gap = calib_.dlb_counter_gap_s;
  const double claims =
      (cfg.algorithm == ScfAlgorithm::kPrivateFock)
          ? static_cast<double>(wl.nshells())
          : static_cast<double>(wl.npairs_total());
  const double counter_floor = (cfg.nodes > 1) ? claims * counter_gap : 0.0;

  const double build = std::max(mk + uniform_extra, counter_floor);

  // ---- ddi_gsumf over all ranks. ----
  const double n2bytes =
      static_cast<double>(wl.nbf()) * wl.nbf() * sizeof(double);
  const double reduction =
      calib_.allreduce_seconds(machine_.network, n2bytes, total_ranks, ranks);

  res.feasible = true;
  res.seconds = (build + reduction + flush_total) * cfg.scf_iterations;
  res.breakdown.eri_s = perfect * cfg.scf_iterations;
  res.breakdown.imbalance_s = (mk - perfect) * cfg.scf_iterations;
  res.breakdown.sync_s = sync_total * cfg.scf_iterations;
  res.breakdown.flush_s = flush_total * cfg.scf_iterations;
  res.breakdown.reduction_s = reduction * cfg.scf_iterations;
  return res;
}

}  // namespace mc::knlsim
