#pragma once
// The schedule simulator: predicts Fock-build time-to-solution for one of
// the paper's three algorithms on a (multi-)node KNL machine, from the
// real task-size distributions (workload.hpp) and the calibrated cost
// model (cost_model.hpp).
//
// Mechanisms modeled -- exactly the ones the paper identifies:
//  * memory feasibility: replicated footprint (+ fixed per-rank pool) caps
//    the usable ranks per node (MPI-only) or rules a configuration out
//    entirely (private Fock on the 5 nm dataset, flat-MCDRAM for anything
//    big);
//  * DLB granularity: list-scheduling makespan over the algorithm's MPI
//    task list (ij pairs for Algorithms 1 & 3, bare i for Algorithm 2) --
//    the coarse i loop is what flattens the private-Fock curve at scale;
//  * intra-rank threading: SMT yield per core, OpenMP chunk dispatch,
//    barrier and FI/FJ flush overheads (Algorithm 3's synchronization tax
//    on a single node);
//  * memory & cluster modes: effective bandwidth on the Fock/density
//    traffic share, all-to-all coherence penalty on shared writes;
//  * the end-of-build allreduce over the Aries dragonfly.

#include <string>

#include "core/memory_model.hpp"
#include "knlsim/cost_model.hpp"
#include "knlsim/knl_config.hpp"
#include "knlsim/workload.hpp"

namespace mc::knlsim {

using core::ScfAlgorithm;

struct SimConfig {
  ScfAlgorithm algorithm = ScfAlgorithm::kSharedFock;
  int nodes = 1;
  /// MPI ranks per node; -1 = auto (max feasible for MPI-only, 4 for the
  /// hybrid codes, as the paper runs).
  int ranks_per_node = -1;
  /// Threads per rank for the hybrid codes; -1 = fill all hardware threads.
  int threads_per_rank = -1;
  MemoryMode memory_mode = MemoryMode::kCache;
  ClusterMode cluster_mode = ClusterMode::kQuadrant;
  Affinity affinity = Affinity::kScatter;
  /// true: GAMESS-style dynamic load balancing via the global counter (the
  /// paper's scheme). false: static contiguous block decomposition of the
  /// task loop -- an ablation showing why DLB is load-bearing (the
  /// triangular task-size growth makes static blocks pathological).
  bool dynamic_load_balance = true;
  /// SCF iterations folded into the reported time (Table 3 reports whole
  /// runs; the per-build shape is iteration-independent).
  int scf_iterations = 16;
};

struct SimBreakdown {
  double eri_s = 0.0;        ///< pure quartet work on the critical rank
  double imbalance_s = 0.0;  ///< makespan minus perfect-split work
  double sync_s = 0.0;       ///< barriers + DLB round trips
  double flush_s = 0.0;      ///< FI/FJ and thread-copy reductions
  double reduction_s = 0.0;  ///< ddi_gsumf over ranks
};

struct SimResult {
  bool feasible = false;
  std::string infeasible_reason;
  int ranks_per_node = 0;
  int threads_per_rank = 0;
  double seconds = 0.0;  ///< total over scf_iterations
  SimBreakdown breakdown;

  /// Parallel efficiency vs a baseline result (same workload/algorithm).
  [[nodiscard]] double efficiency_vs(const SimResult& base,
                                     int base_nodes, int nodes) const {
    if (!feasible || !base.feasible || seconds <= 0.0) return 0.0;
    return (base.seconds * base_nodes) / (seconds * nodes) * 100.0;
  }
};

class Simulator {
 public:
  Simulator(const Workload& workload, ThetaMachine machine = {},
            KnlCalibration calib = {})
      : wl_(&workload), machine_(machine), calib_(calib) {}

  [[nodiscard]] SimResult run(const SimConfig& config) const;

  [[nodiscard]] const ThetaMachine& machine() const { return machine_; }
  [[nodiscard]] const KnlCalibration& calibration() const { return calib_; }

 private:
  const Workload* wl_;
  ThetaMachine machine_;
  KnlCalibration calib_;
};

}  // namespace mc::knlsim
