#include "ints/multipole.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

std::array<la::Matrix, 3> dipole_matrices(
    const basis::BasisSet& bs, const std::array<double, 3>& origin) {
  const std::size_t nbf = bs.nbf();
  std::array<la::Matrix, 3> m{la::Matrix(nbf, nbf), la::Matrix(nbf, nbf),
                              la::Matrix(nbf, nbf)};

  for (std::size_t s1 = 0; s1 < bs.nshells(); ++s1) {
    const basis::Shell& sh1 = bs.shell(s1);
    for (std::size_t s2 = 0; s2 <= s1; ++s2) {
      const basis::Shell& sh2 = bs.shell(s2);
      const auto c1 = basis::cartesian_components(sh1.l);
      const auto c2 = basis::cartesian_components(sh2.l);
      const double ab[3] = {sh1.center[0] - sh2.center[0],
                            sh1.center[1] - sh2.center[1],
                            sh1.center[2] - sh2.center[2]};

      for (int pa = 0; pa < sh1.nprim(); ++pa) {
        for (int pb = 0; pb < sh2.nprim(); ++pb) {
          const double a = sh1.exps[static_cast<std::size_t>(pa)];
          const double b = sh2.exps[static_cast<std::size_t>(pb)];
          const double coef = sh1.coefs[static_cast<std::size_t>(pa)] *
                              sh2.coefs[static_cast<std::size_t>(pb)];
          const double p = a + b;
          const double s1d = std::sqrt(kPi / p);
          const double pref = coef * s1d * s1d * s1d;
          // E tables with bra angular momentum raised by one for the
          // moment component: <x^i_A | x | x^j_B> = S^{i+1,j} + A_x S^{ij}.
          const ETable ex(sh1.l + 1, sh2.l, a, b, ab[0]);
          const ETable ey(sh1.l + 1, sh2.l, a, b, ab[1]);
          const ETable ez(sh1.l + 1, sh2.l, a, b, ab[2]);
          const ETable* e[3] = {&ex, &ey, &ez};

          for (std::size_t f1 = 0; f1 < c1.size(); ++f1) {
            const auto comp1 = c1[f1];
            const double n1 = basis::component_norm_ratio(
                sh1.l, comp1[0], comp1[1], comp1[2]);
            for (std::size_t f2 = 0; f2 < c2.size(); ++f2) {
              const auto comp2 = c2[f2];
              const double n2 = basis::component_norm_ratio(
                  sh2.l, comp2[0], comp2[1], comp2[2]);
              const double nn = pref * n1 * n2;
              // 1-D overlap factors for all three axes.
              double s1f[3], m1f[3];
              for (int d = 0; d < 3; ++d) {
                const int i = comp1[static_cast<std::size_t>(d)];
                const int j = comp2[static_cast<std::size_t>(d)];
                s1f[d] = (*e[d])(i, j, 0);
                m1f[d] = (*e[d])(i + 1, j, 0) +
                         (sh1.center[static_cast<std::size_t>(d)] -
                          origin[static_cast<std::size_t>(d)]) *
                             (*e[d])(i, j, 0);
              }
              const std::size_t bf1 = sh1.first_bf + f1;
              const std::size_t bf2 = sh2.first_bf + f2;
              const double vals[3] = {m1f[0] * s1f[1] * s1f[2],
                                      s1f[0] * m1f[1] * s1f[2],
                                      s1f[0] * s1f[1] * m1f[2]};
              for (int d = 0; d < 3; ++d) {
                m[static_cast<std::size_t>(d)](bf1, bf2) += nn * vals[d];
                if (bf1 != bf2) {
                  m[static_cast<std::size_t>(d)](bf2, bf1) += nn * vals[d];
                }
              }
            }
          }
        }
      }
    }
  }
  return m;
}

}  // namespace mc::ints
