#pragma once
// Batched SIMD-friendly ERI pipeline (DESIGN.md section 12).
//
// A QuartetBatch accumulates surviving (ij|kl) shell quartets -- the ones
// that passed Schwarz and density-weighted screening -- and evaluates them
// in three phases per angular-momentum class (Lbra, Lket) = (l1+l2, l3+l4):
//
//   1. sweep the primitive-pair loops collecting the Boys arguments
//      T = alpha |PQ|^2 of every surviving primitive quartet into a
//      contiguous buffer,
//   2. one boys_batch() call per class (uniform ltot, so the downward
//      recursion runs branch-free across the whole batch -- the SIMD axis),
//   3. re-run the identical loops through the shared eri_quartet_kernel,
//      consuming the Boys columns in the same order phase 1 produced them.
//
// Determinism contract: per-quartet results are bitwise identical to the
// scalar EriEngine::compute path (tested at a 1-ULP bound) because both
// paths share eri_quartet_kernel and boys/boys_batch agree element for
// element. Results are stored per entry in *discovery order*, so callers
// that scatter batch results in entry order reproduce the scalar code's
// summation order exactly -- batch capacity and flush boundaries never
// change a digested value.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ints/eri.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

/// Default batch capacity (quartets). Large enough that class groups reach
/// SIMD-profitable Boys widths on real inputs, small enough that the
/// per-thread result buffer stays cache-resident.
inline constexpr std::size_t kDefaultBatchCapacity = 64;

/// Accumulates screened shell quartets and evaluates them class-batched.
/// Not thread-safe: one instance per thread (the Fock builders hold one in
/// each worker's private state).
class QuartetBatch {
 public:
  struct Entry {
    std::uint32_t si = 0, sj = 0, sk = 0, sl = 0;  ///< caller shell indices
    std::uint64_t tag = 0;     ///< caller-defined (e.g. kl task id)
    std::size_t offset = 0;    ///< into the results buffer
    std::size_t size = 0;      ///< doubles in this quartet's batch
  };

  explicit QuartetBatch(const EriEngine& eng,
                        std::size_t capacity = kDefaultBatchCapacity);

  /// Queue one quartet (must not be full). `tag` rides along untouched for
  /// the caller's digest routing.
  void add(std::size_t si, std::size_t sj, std::size_t sk, std::size_t sl,
           std::uint64_t tag = 0);

  /// Evaluate every queued quartet (class-grouped Boys batching). After
  /// this, result(i) is valid for each entry i.
  void evaluate();

  /// Caller-orientation [i][j][k][l] batch of entry `idx` (post-evaluate).
  [[nodiscard]] const double* result(std::size_t idx) const {
    return results_.data() + entries_[idx].offset;
  }

  [[nodiscard]] const std::vector<Entry>& quartets() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop all entries; keeps buffers for reuse.
  void clear();

 private:
  void evaluate_class(int lbra, int lket,
                      const std::vector<std::uint32_t>& idxs);

  const EriEngine* eng_;
  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::vector<double> results_;
  std::size_t results_size_ = 0;

  // Class-group buckets, keyed Lbra * kClassDim + Lket; used_keys_ tracks
  // which buckets are non-empty so clear() stays O(classes used).
  static constexpr int kClassDim = 9;  // l1+l2 <= 8
  std::array<std::vector<std::uint32_t>, kClassDim * kClassDim> buckets_;
  std::vector<int> used_keys_;

  // Evaluation scratch (reused across flushes, no hot-loop allocations).
  std::vector<double> t_buf_;   ///< phase-1 Boys arguments
  std::vector<double> fm_buf_;  ///< boys_batch output, SoA [m][element]
  std::vector<std::uint8_t> surv_;  ///< phase-1 per-(bp,kp) prescreen verdict
  std::vector<double> geom_buf_;    ///< phase-1 geometry per survivor
  std::vector<double> g_;       ///< kernel G accumulator (compact triangle)
  std::vector<double> rmat_;    ///< gathered R matrix [ket tri][bra tri]
  std::vector<double> tmp_;     ///< canonical-orientation staging
  RTable r_;
};

}  // namespace mc::ints
