#include "ints/eri_batch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ints/boys.hpp"
#include "ints/eri_kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mc::ints {

QuartetBatch::QuartetBatch(const EriEngine& eng, std::size_t capacity)
    : eng_(&eng), capacity_(capacity) {
  MC_CHECK(capacity_ > 0, "QuartetBatch capacity must be positive");
  entries_.reserve(capacity_);
}

void QuartetBatch::add(std::size_t si, std::size_t sj, std::size_t sk,
                       std::size_t sl, std::uint64_t tag) {
  MC_CHECK(!full(), "QuartetBatch::add on a full batch (flush first)");
  Entry e;
  e.si = static_cast<std::uint32_t>(si);
  e.sj = static_cast<std::uint32_t>(sj);
  e.sk = static_cast<std::uint32_t>(sk);
  e.sl = static_cast<std::uint32_t>(sl);
  e.tag = tag;
  e.offset = results_size_;
  e.size = eng_->batch_size(si, sj, sk, sl);
  results_size_ += e.size;
  entries_.push_back(e);
}

void QuartetBatch::evaluate() {
  if (entries_.empty()) return;
  ensure_batch_size(results_, results_size_);

  const ShellPairList& pairs = eng_->pairs();
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const ShellPairData& bra =
        pairs.pair(std::max(e.si, e.sj), std::min(e.si, e.sj));
    const ShellPairData& ket =
        pairs.pair(std::max(e.sk, e.sl), std::min(e.sk, e.sl));
    const int key = bra.lsum() * kClassDim + ket.lsum();
    if (buckets_[static_cast<std::size_t>(key)].empty()) {
      used_keys_.push_back(key);
    }
    buckets_[static_cast<std::size_t>(key)].push_back(i);
  }

  for (const int key : used_keys_) {
    std::vector<std::uint32_t>& bucket =
        buckets_[static_cast<std::size_t>(key)];
    evaluate_class(key / kClassDim, key % kClassDim, bucket);
    bucket.clear();
  }
  used_keys_.clear();
}

void QuartetBatch::evaluate_class(int lbra, int lket,
                                  const std::vector<std::uint32_t>& idxs) {
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;

  const int ltot = lbra + lket;
  const ShellPairList& pairs = eng_->pairs();
  const basis::BasisSet& bs = eng_->basis_set();

  // Phase 1: sweep the primitive-pair loops once, recording per primitive
  // quartet the prescreen verdict and, for survivors, the Boys argument
  // plus the geometry the kernel needs (pref, alpha, PQ) -- all in
  // entry-then-primitive enumeration order, the exact order phase 3
  // replays. Phase 3 then never recomputes prim_geom (one sqrt + divide
  // per primitive quartet for the whole pipeline).
  t_buf_.clear();
  surv_.clear();
  geom_buf_.clear();
  for (const std::uint32_t i : idxs) {
    const Entry& e = entries_[i];
    const ShellPairData& bra =
        pairs.pair(std::max(e.si, e.sj), std::min(e.si, e.sj));
    const ShellPairData& ket =
        pairs.pair(std::max(e.sk, e.sl), std::min(e.sk, e.sl));
    for (const PrimPairData& bp : bra.prims) {
      for (const PrimPairData& kp : ket.prims) {
        const detail::PrimGeom pg = detail::prim_geom(bp, kp);
        const bool skip = detail::prim_skipped(bp, kp, pg.pref);
        surv_.push_back(static_cast<std::uint8_t>(!skip));
        if (skip) continue;
        t_buf_.push_back(pg.t);
        geom_buf_.push_back(pg.pref);
        geom_buf_.push_back(pg.alpha);
        geom_buf_.push_back(pg.pq[0]);
        geom_buf_.push_back(pg.pq[1]);
        geom_buf_.push_back(pg.pq[2]);
      }
    }
  }

  // Phase 2: one batched Boys evaluation for the whole class group.
  const std::size_t nsurv = t_buf_.size();
  if (nsurv > 0) {
    ensure_batch_size(fm_buf_,
                      static_cast<std::size_t>(ltot + 1) * nsurv);
    boys_batch(ltot, nsurv, t_buf_.data(), fm_buf_.data());
  }

  // Phase 3: per-quartet kernel replaying phase-1 verdicts/geometry and
  // consuming the Boys columns in lockstep.
  detail::BatchedPrimSource src;
  src.fm = fm_buf_.data();
  src.n = nsurv;
  src.survived = surv_.data();
  src.geom = geom_buf_.data();
  for (const std::uint32_t i : idxs) {
    const Entry& e = entries_[i];
    const bool swap_ij = e.si < e.sj;
    const bool swap_kl = e.sk < e.sl;
    const ShellPairData& bra =
        pairs.pair(std::max(e.si, e.sj), std::min(e.si, e.sj));
    const ShellPairData& ket =
        pairs.pair(std::max(e.sk, e.sl), std::min(e.sk, e.sl));
    double* dst = results_.data() + e.offset;
    if (!swap_ij && !swap_kl) {
      detail::eri_quartet_kernel(bra, ket, src, g_, rmat_, r_, dst);
    } else {
      ensure_batch_size(tmp_, e.size);
      detail::eri_quartet_kernel(bra, ket, src, g_, rmat_, r_, tmp_.data());
      detail::permute_to_caller(tmp_.data(), swap_ij, swap_kl,
                                bs.shell(e.si).nfunc(),
                                bs.shell(e.sj).nfunc(),
                                bs.shell(e.sk).nfunc(),
                                bs.shell(e.sl).nfunc(), dst);
    }
  }
  MC_CHECK(src.cursor == nsurv && src.flag_cursor == surv_.size(),
           "batched ERI pipeline consumed a different primitive-quartet "
           "count than it collected");

  if (timed) {
    obs::add_eri_class(lbra, lket, idxs.size(), nsurv,
                       obs::monotonic_ns() - t0);
  }
}

void QuartetBatch::clear() {
  entries_.clear();
  results_size_ = 0;
}

}  // namespace mc::ints
