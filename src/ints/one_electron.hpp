#pragma once
// One-electron integral matrices: overlap S, kinetic T, nuclear attraction
// V, and the core Hamiltonian H = T + V. O(N^2) work; the paper notes these
// are negligible next to the two-electron part but they are required
// substrates of the SCF loop.

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "la/matrix.hpp"

namespace mc::ints {

la::Matrix overlap_matrix(const basis::BasisSet& bs);
la::Matrix kinetic_matrix(const basis::BasisSet& bs);
la::Matrix nuclear_attraction_matrix(const basis::BasisSet& bs,
                                     const chem::Molecule& mol);
/// H_core = T + V.
la::Matrix core_hamiltonian(const basis::BasisSet& bs,
                            const chem::Molecule& mol);

}  // namespace mc::ints
