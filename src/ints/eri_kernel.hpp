#pragma once
// Internal McMurchie-Davidson quartet kernel shared by the scalar ERI path
// (eri.cpp) and the batched pipeline (eri_batch.cpp). Both paths execute
// the *same* per-quartet instruction sequence -- primitive-pair geometry,
// prescreen, Hermite Coulomb recursion, ket accumulation, bra contraction
// -- and differ only in where the Boys values come from (computed inline
// vs consumed from a boys_batch block). That shared structure is what
// makes the scalar-vs-batched agreement bitwise (tested at a 1-ULP bound
// in test_ints.cpp) instead of approximate.
//
// Not part of the public ints API; include from src/ints only.

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/constants.hpp"
#include "ints/boys.hpp"
#include "ints/hermite.hpp"
#include "ints/shell_pair.hpp"

namespace mc::ints::detail {

// MD Coulomb kernel normalization 2*pi^2.5, hoisted out of the primitive
// pair loops (it used to be recomputed via std::pow per ket primitive).
inline const double kTwoPiToFiveHalves = 2.0 * std::pow(kPi, 2.5);

// Primitive-level prescreen: a primitive pair's contribution to any batch
// element is bounded (up to the Boys/Hermite recursion factors) by
// pref * max|H_bra| * max|H_ket|. The recursion can amplify by a few
// orders for high L, so the cutoff sits ~9 orders below the loosest
// Schwarz threshold in use (1e-10); dropped terms are far beneath both
// the screening error budget and double rounding of accumulated batches.
inline constexpr double kPrimPairCutoff = 1e-19;

/// Per-primitive-quartet geometry: the MD Coulomb prefactor, the reduced
/// exponent, the P - Q vector, and the Boys argument T = alpha |PQ|^2.
/// Deterministic in (bp, kp) alone, so phase 1 (Boys-argument collection)
/// and phase 3 (consumption) of the batched pipeline recompute identical
/// values.
struct PrimGeom {
  double pref = 0.0;
  double alpha = 0.0;
  double t = 0.0;
  double pq[3] = {0.0, 0.0, 0.0};
};

inline PrimGeom prim_geom(const PrimPairData& bp, const PrimPairData& kp) {
  PrimGeom g;
  const double p = bp.p;
  const double q = kp.p;
  // Contraction coefficients live in the Hermite tables; the remaining
  // prefactor is the MD Coulomb kernel normalization.
  g.pref = kTwoPiToFiveHalves / (p * q * std::sqrt(p + q));
  g.alpha = p * q / (p + q);
  g.pq[0] = bp.P[0] - kp.P[0];
  g.pq[1] = bp.P[1] - kp.P[1];
  g.pq[2] = bp.P[2] - kp.P[2];
  const double r2 =
      g.pq[0] * g.pq[0] + g.pq[1] * g.pq[1] + g.pq[2] * g.pq[2];
  g.t = g.alpha * r2;
  return g;
}

/// Primitive-pair prescreen on the combined Hermite weight.
inline bool prim_skipped(const PrimPairData& bp, const PrimPairData& kp,
                         double pref) {
  return pref * bp.hmax * kp.hmax < kPrimPairCutoff;
}

/// View into a block of Boys values for one primitive quartet:
/// fm[m * stride] = F_m(T), m = 0..ltot.
struct FmView {
  const double* fm = nullptr;
  std::size_t stride = 1;
};

/// Boys source for the scalar path: evaluates inline per primitive quartet.
struct ScalarBoys {
  int ltot = 0;
  double buf[kMaxBoysOrder + 1];
  FmView operator()(const PrimGeom& pg) {
    boys(ltot, pg.t, buf);
    return {buf, 1};
  }
};

/// Boys source for the batched path: consumes consecutive columns of a
/// boys_batch SoA block (fm[m * n + e]). The kernel requests columns only
/// for surviving primitive quartets, in enumeration order -- exactly the
/// order phase 1 appended T values -- so a monotone cursor suffices.
struct BatchedBoys {
  const double* fm = nullptr;
  std::size_t n = 0;       ///< batch width (SoA stride)
  std::size_t cursor = 0;  ///< next column to hand out
  FmView operator()(const PrimGeom& /*pg*/) { return {fm + cursor++, n}; }
};

/// Contracted ERI batch for one (bra, ket) shell-pair quartet in canonical
/// orientation [bra.s1][bra.s2][ket.s1][ket.s2]; `boys_src(pg)` supplies
/// the Boys values for each surviving primitive quartet. Fully initializes
/// `out`. All inner loops are bounded by the Hermite triangles
/// (t+u+v <= l1+l2 per side): iterations outside them multiply exactly-zero
/// Hermite coefficients and are dropped, which also keeps every RTable read
/// inside the region build_from writes.
template <typename BoysSource>
void eri_quartet_kernel(const ShellPairData& bra, const ShellPairData& ket,
                        BoysSource&& boys_src, std::vector<double>& g_scratch,
                        RTable& r, double* out) {
  const int ncomp_ab = bra.ncomp();
  const int ncomp_cd = ket.ncomp();
  const std::size_t herm_ab = bra.herm_size();
  const int hab = bra.hd;
  const int hcd = ket.hd;
  const std::size_t herm_cd = static_cast<std::size_t>(hcd) * hcd * hcd;
  const int lb = hab - 1;  // bra.l1 + bra.l2
  const int lk = hcd - 1;  // ket.l1 + ket.l2
  const int ltot = lb + lk;

  const std::size_t nout =
      static_cast<std::size_t>(ncomp_ab) * static_cast<std::size_t>(ncomp_cd);
  for (std::size_t i = 0; i < nout; ++i) out[i] = 0.0;

  // G[cd][t,u,v] over the *bra* Hermite range, reused across primitives.
  const std::size_t gsize = static_cast<std::size_t>(ncomp_cd) * herm_ab;
  if (g_scratch.size() < gsize) g_scratch.resize(gsize);
  double* g = g_scratch.data();

  for (const PrimPairData& bp : bra.prims) {
    std::fill_n(g, gsize, 0.0);

    for (const PrimPairData& kp : ket.prims) {
      const PrimGeom pg = prim_geom(bp, kp);
      if (prim_skipped(bp, kp, pg.pref)) continue;
      const FmView fv = boys_src(pg);
      r.build_from(ltot, pg.alpha, pg.pq, fv.fm, fv.stride);

      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* hk = kp.hermite.data() +
                           static_cast<std::size_t>(cd) * herm_cd;
        double* gc = g + static_cast<std::size_t>(cd) * herm_ab;
        for (int tau = 0; tau <= lk; ++tau) {
          for (int nu = 0; nu <= lk - tau; ++nu) {
            for (int phi = 0; phi <= lk - tau - nu; ++phi) {
              const double hval = hk[(tau * hcd + nu) * hcd + phi];
              if (hval == 0.0) continue;
              const double w =
                  pg.pref * (((tau + nu + phi) & 1) ? -hval : hval);
              for (int t = 0; t <= lb; ++t) {
                const int rt = t + tau;
                for (int u = 0; u <= lb - t; ++u) {
                  const int ru = u + nu;
                  double* grow = gc + (t * hab + u) * hab;
                  const int vend = lb - t - u;
#pragma omp simd
                  for (int v = 0; v <= vend; ++v) {
                    grow[v] += w * r(rt, ru, v + phi);
                  }
                }
              }
            }
          }
        }
      }
    }

    // Contract the bra Hermite coefficients against G, triangle-bounded:
    // hb entries with t+u+v > lb are exactly zero by construction.
    for (int ab = 0; ab < ncomp_ab; ++ab) {
      const double* hb =
          bp.hermite.data() + static_cast<std::size_t>(ab) * herm_ab;
      double* orow = out + static_cast<std::size_t>(ab) * ncomp_cd;
      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* gc = g + static_cast<std::size_t>(cd) * herm_ab;
        double s = 0.0;
        for (int t = 0; t <= lb; ++t) {
          for (int u = 0; u <= lb - t; ++u) {
            const std::size_t base = static_cast<std::size_t>(t * hab + u) *
                                     static_cast<std::size_t>(hab);
            for (int v = 0; v <= lb - t - u; ++v) {
              s += hb[base + static_cast<std::size_t>(v)] *
                   gc[base + static_cast<std::size_t>(v)];
            }
          }
        }
        orow[cd] += s;
      }
    }
  }
}

/// Permute a canonical-orientation quartet batch ([b1][b2][k1][k2] with
/// b1 = max(si,sj), etc.) into the caller's [i][j][k][l] layout.
inline void permute_to_caller(const double* canonical, bool swap_ij,
                              bool swap_kl, int ni, int nj, int nk, int nl,
                              double* out) {
  const int nb1 = swap_ij ? nj : ni;
  const int nb2 = swap_ij ? ni : nj;
  const int nk1 = swap_kl ? nl : nk;
  const int nk2 = swap_kl ? nk : nl;
  for (int a = 0; a < nb1; ++a) {
    for (int b = 0; b < nb2; ++b) {
      const int ii = swap_ij ? b : a;
      const int jj = swap_ij ? a : b;
      for (int c = 0; c < nk1; ++c) {
        for (int d = 0; d < nk2; ++d) {
          const int kk = swap_kl ? d : c;
          const int ll = swap_kl ? c : d;
          out[((static_cast<std::size_t>(ii) * nj + jj) * nk + kk) * nl +
              ll] =
              canonical[((static_cast<std::size_t>(a) * nb2 + b) * nk1 + c) *
                            nk2 +
                        d];
        }
      }
    }
  }
}

}  // namespace mc::ints::detail
