#pragma once
// Internal McMurchie-Davidson quartet kernel shared by the scalar ERI path
// (eri.cpp) and the batched pipeline (eri_batch.cpp). Both paths execute
// the *same* per-quartet instruction sequence -- primitive-pair geometry,
// prescreen, Hermite Coulomb recursion, ket accumulation, bra contraction
// -- and differ only in where the Boys values come from (computed inline
// vs consumed from a boys_batch block). That shared structure is what
// makes the scalar-vs-batched agreement bitwise (tested at a 1-ULP bound
// in test_ints.cpp) instead of approximate.
//
// Kernel form (DESIGN.md section 12.7): the Hermite contractions run over
// *compact triangles*. For each angular class, precomputed side tables
// (class_tab) enumerate one side's Hermite triangle {(t,u,v): t+u+v <= L}
// in lexicographic order and record each entry's linear offset into the
// combined R cube. Because the cube index is linear,
//   offset(t+tau, u+nu, v+phi) = offset_bra(t,u,v) + offset_ket(tau,nu,phi),
// so the Hermite Coulomb tensor of one primitive quartet gathers into a
// dense [ket-tri][bra-tri] matrix in one pass, and both the ket
// accumulation (G += w * R-row) and the bra contraction (out += Hb . G)
// become unit-stride inner loops over the bra triangle -- the SIMD axis
// within one primitive quartet, complementing the Boys batch axis across
// quartets. Iteration orders match the pre-restructure kernel exactly
// (tau,nu,phi and t,u,v ascending), so results are bitwise unchanged;
// eri_quartet_kernel_ref below preserves the original nested-loop form
// and test_ints pins new == ref at 0 ULP.
//
// Not part of the public ints API; include from src/ints only.

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "ints/boys.hpp"
#include "ints/hermite.hpp"
#include "ints/shell_pair.hpp"

namespace mc::ints::detail {

// MD Coulomb kernel normalization 2*pi^2.5, hoisted out of the primitive
// pair loops (it used to be recomputed via std::pow per ket primitive).
inline const double kTwoPiToFiveHalves = 2.0 * std::pow(kPi, 2.5);

// Primitive-level prescreen: a primitive pair's contribution to any batch
// element is bounded (up to the Boys/Hermite recursion factors) by
// pref * max|H_bra| * max|H_ket|. The recursion can amplify by a few
// orders for high L, so the cutoff sits ~9 orders below the loosest
// Schwarz threshold in use (1e-10); dropped terms are far beneath both
// the screening error budget and double rounding of accumulated batches.
inline constexpr double kPrimPairCutoff = 1e-19;

/// Per-primitive-quartet geometry: the MD Coulomb prefactor, the reduced
/// exponent, the P - Q vector, and the Boys argument T = alpha |PQ|^2.
/// Deterministic in (bp, kp) alone, so phase 1 (Boys-argument collection)
/// and phase 3 (consumption) of the batched pipeline recompute identical
/// values.
struct PrimGeom {
  double pref = 0.0;
  double alpha = 0.0;
  double t = 0.0;
  double pq[3] = {0.0, 0.0, 0.0};
};

inline PrimGeom prim_geom(const PrimPairData& bp, const PrimPairData& kp) {
  PrimGeom g;
  const double p = bp.p;
  const double q = kp.p;
  // Contraction coefficients live in the Hermite tables; the remaining
  // prefactor is the MD Coulomb kernel normalization.
  g.pref = kTwoPiToFiveHalves / (p * q * std::sqrt(p + q));
  g.alpha = p * q / (p + q);
  g.pq[0] = bp.P[0] - kp.P[0];
  g.pq[1] = bp.P[1] - kp.P[1];
  g.pq[2] = bp.P[2] - kp.P[2];
  const double r2 =
      g.pq[0] * g.pq[0] + g.pq[1] * g.pq[1] + g.pq[2] * g.pq[2];
  g.t = g.alpha * r2;
  return g;
}

/// Primitive-pair prescreen on the combined Hermite weight.
inline bool prim_skipped(const PrimPairData& bp, const PrimPairData& kp,
                         double pref) {
  return pref * bp.hmax * kp.hmax < kPrimPairCutoff;
}

/// View into a block of Boys values for one primitive quartet:
/// fm[m * stride] = F_m(T), m = 0..ltot.
struct FmView {
  const double* fm = nullptr;
  std::size_t stride = 1;
};

/// Boys source for the scalar path: evaluates inline per primitive quartet.
/// (Functor interface retained for eri_quartet_kernel_ref / tests.)
struct ScalarBoys {
  int ltot = 0;
  double buf[kMaxBoysOrder + 1];
  FmView operator()(const PrimGeom& pg) {
    boys(ltot, pg.t, buf);
    return {buf, 1};
  }
};

/// Primitive source for the scalar path: computes geometry, prescreen, and
/// Boys values inline per primitive quartet.
struct ScalarPrimSource {
  int ltot = 0;
  double buf[kMaxBoysOrder + 1];
  bool next(const PrimPairData& bp, const PrimPairData& kp, PrimGeom& pg,
            FmView& fv) {
    pg = prim_geom(bp, kp);
    if (prim_skipped(bp, kp, pg.pref)) return false;
    boys(ltot, pg.t, buf);
    fv = {buf, 1};
    return true;
  }
};

/// Primitive source for the batched path: replays the survival decisions
/// and geometry phase 1 computed (one prim_geom per primitive quartet for
/// the whole pipeline -- the values are bitwise the ones the scalar path
/// recomputes, being a deterministic function of the same pair data), and
/// consumes consecutive columns of a boys_batch SoA block (fm[m * n + e]).
/// Phase 1 appended flags/geometry/T in enumeration order -- exactly the
/// order the kernel walks the primitive loops -- so monotone cursors
/// suffice.
struct BatchedPrimSource {
  static constexpr std::size_t kGeomStride = 5;  // pref, alpha, pq[3]
  const double* fm = nullptr;      ///< boys_batch block
  std::size_t n = 0;               ///< batch width (SoA stride)
  const std::uint8_t* survived = nullptr;  ///< per-(bp,kp) phase-1 verdicts
  const double* geom = nullptr;    ///< per-survivor geometry records
  std::size_t cursor = 0;          ///< next survivor column
  std::size_t flag_cursor = 0;     ///< next (bp, kp) flag
  bool next(const PrimPairData& /*bp*/, const PrimPairData& /*kp*/,
            PrimGeom& pg, FmView& fv) {
    if (!survived[flag_cursor++]) return false;
    const double* rec = geom + cursor * kGeomStride;
    pg.pref = rec[0];
    pg.alpha = rec[1];
    pg.pq[0] = rec[2];
    pg.pq[1] = rec[3];
    pg.pq[2] = rec[4];
    fv = {fm + cursor, n};
    ++cursor;
    return true;
  }
};

/// Largest per-side L (= l1 + l2) the class tables cover: shells up to
/// l = 8, comfortably past every built-in basis, and the matching
/// QuartetBatch class-dim bound. ltot then tops out at kMaxBoysOrder.
inline constexpr int kMaxSideL = 16;

/// Per-(L, ltot) side table: one side's Hermite triangle
/// {(t,u,v) : t+u+v <= L} enumerated lexicographically, with each entry's
/// linear offset into the combined R cube of dimension d = ltot + 1 and
/// the (-1)^(t+u+v) ket parity.
struct ClassTab {
  int n = 0;                     ///< triangle size: hermite_tri_size(L)
  std::vector<int> r_off;        ///< [(t*d + u)*d + v]
  std::vector<std::uint8_t> neg; ///< (t + u + v) & 1
};

/// Lazily-built read-only store of every side table (thread-safe magic
/// static; built once, ~350 KB, then read-shared by all threads).
inline const ClassTab& class_tab(int l, int ltot) {
  static const auto tabs = [] {
    auto t = std::make_unique<
        std::array<ClassTab, (kMaxSideL + 1) * (kMaxBoysOrder + 1)>>();
    for (int l2 = 0; l2 <= kMaxSideL; ++l2) {
      for (int lt = l2; lt <= kMaxBoysOrder; ++lt) {
        ClassTab& tab = (*t)[static_cast<std::size_t>(
            l2 * (kMaxBoysOrder + 1) + lt)];
        const int d = lt + 1;
        tab.n = hermite_tri_size(l2);
        tab.r_off.reserve(static_cast<std::size_t>(tab.n));
        tab.neg.reserve(static_cast<std::size_t>(tab.n));
        for (int tt = 0; tt <= l2; ++tt) {
          for (int u = 0; u <= l2 - tt; ++u) {
            for (int v = 0; v <= l2 - tt - u; ++v) {
              tab.r_off.push_back((tt * d + u) * d + v);
              tab.neg.push_back(
                  static_cast<std::uint8_t>((tt + u + v) & 1));
            }
          }
        }
      }
    }
    return t;
  }();
  MC_CHECK(l >= 0 && l <= kMaxSideL && ltot >= l && ltot <= kMaxBoysOrder,
           "ERI class outside the side-table range");
  return (*tabs)[static_cast<std::size_t>(l * (kMaxBoysOrder + 1) + ltot)];
}

/// Compile-time variant of ClassTab for the constant-L kernel
/// instantiations: same enumeration, same values, but the offsets and
/// parities are constexpr so the unrolled loops see immediates (and the
/// hot path skips the class_tab magic-static guard).
template <int L, int LTOT>
struct StaticClassTab {
  static constexpr int kN = hermite_tri_size(L);
  int off[static_cast<std::size_t>(kN)] = {};
  std::uint8_t neg[static_cast<std::size_t>(kN)] = {};
  constexpr StaticClassTab() {
    int i = 0;
    constexpr int d = LTOT + 1;
    for (int t = 0; t <= L; ++t) {
      for (int u = 0; u <= L - t; ++u) {
        for (int v = 0; v <= L - t - u; ++v) {
          off[static_cast<std::size_t>(i)] = (t * d + u) * d + v;
          neg[static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>((t + u + v) & 1);
          ++i;
        }
      }
    }
  }
};

template <int L, int LTOT>
inline constexpr StaticClassTab<L, LTOT> kStaticClassTab{};

/// Kernel body shared by every angular class. LB / LK are the side L
/// values when known at compile time (the dominant low-L classes are
/// dispatched to constant instantiations below, which lets the inlined
/// build_from recursion and the tiny gather/accumulate loops fully unroll)
/// or -1 for the runtime-L fallback. Identical loop structure and
/// arithmetic either way, so the specializations are bitwise-identical to
/// the fallback by construction.
template <int LB, int LK, typename PrimSource>
void eri_quartet_kernel_impl(const ShellPairData& bra,
                             const ShellPairData& ket, PrimSource&& src,
                             std::vector<double>& g_scratch,
                             std::vector<double>& rmat_scratch, RTable& r,
                             double* out) {
  constexpr bool kStatic = (LB >= 0 && LK >= 0);
  const int ncomp_ab = bra.ncomp();
  const int ncomp_cd = ket.ncomp();
  const int lb = kStatic ? LB : bra.lsum();
  const int lk = kStatic ? LK : ket.lsum();
  const int ltot = lb + lk;

  const std::size_t nout =
      static_cast<std::size_t>(ncomp_ab) * static_cast<std::size_t>(ncomp_cd);
  for (std::size_t i = 0; i < nout; ++i) out[i] = 0.0;

  const int nb = kStatic ? hermite_tri_size(LB < 0 ? 0 : LB)
                         : class_tab(lb, ltot).n;
  const int nq = kStatic ? hermite_tri_size(LK < 0 ? 0 : LK)
                         : class_tab(lk, ltot).n;
  const int* bra_off;
  const int* ket_off;
  const std::uint8_t* ket_neg;
  if constexpr (kStatic) {
    bra_off = kStaticClassTab<LB, LB + LK>.off;
    ket_off = kStaticClassTab<LK, LB + LK>.off;
    ket_neg = kStaticClassTab<LK, LB + LK>.neg;
  } else {
    const ClassTab& tb = class_tab(lb, ltot);
    const ClassTab& tk = class_tab(lk, ltot);
    bra_off = tb.r_off.data();
    ket_off = tk.r_off.data();
    ket_neg = tk.neg.data();
  }

  // G[cd][p] over the compact bra triangle, reused across primitives.
  const std::size_t gsize =
      static_cast<std::size_t>(ncomp_cd) * static_cast<std::size_t>(nb);
  if (g_scratch.size() < gsize) g_scratch.resize(gsize);
  double* g = g_scratch.data();
  const std::size_t rsize =
      static_cast<std::size_t>(nq) * static_cast<std::size_t>(nb);
  if (rmat_scratch.size() < rsize) rmat_scratch.resize(rsize);
  double* rmat = rmat_scratch.data();

  PrimGeom pg;
  FmView fv;
  for (const PrimPairData& bp : bra.prims) {
    std::fill_n(g, gsize, 0.0);

    for (const PrimPairData& kp : ket.prims) {
      if (!src.next(bp, kp, pg, fv)) continue;
      r.build_from(ltot, pg.alpha, pg.pq, fv.fm, fv.stride);

      // Gather the Hermite Coulomb tensor into a dense [q][p] matrix:
      // element (q, p) = R_{t+tau, u+nu, v+phi} at cube offset
      // ket_off[q] + bra_off[p] (linearity of the cube index). One pass,
      // shared by every ket component below.
      const double* rd = r.data();
      for (int q = 0; q < nq; ++q) {
        const int qoff = ket_off[q];
        double* rrow = rmat + static_cast<std::size_t>(q) * nb;
        for (int p = 0; p < nb; ++p) {
          rrow[p] = rd[static_cast<std::size_t>(qoff + bra_off[p])];
        }
      }

      // Ket accumulation: G[cd][:] += w * R-row, unit stride over the bra
      // triangle. Same (tau,nu,phi) term order and the same products
      // w * R as the reference kernel -- bitwise identical G.
      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* hk = kp.hermite_tri.data() +
                           static_cast<std::size_t>(cd) * nq;
        double* gc = g + static_cast<std::size_t>(cd) * nb;
        for (int q = 0; q < nq; ++q) {
          const double hval = hk[q];
          if (hval == 0.0) continue;
          const double w = pg.pref * (ket_neg[q] ? -hval : hval);
          const double* rrow = rmat + static_cast<std::size_t>(q) * nb;
#pragma omp simd
          for (int p = 0; p < nb; ++p) {
            gc[p] += w * rrow[p];
          }
        }
      }
    }

    // Bra contraction against compact G: sequential p-order dot products,
    // summation order identical to the reference kernel's (t,u,v) walk.
    for (int ab = 0; ab < ncomp_ab; ++ab) {
      const double* hb = bp.hermite_tri.data() +
                         static_cast<std::size_t>(ab) * nb;
      double* orow = out + static_cast<std::size_t>(ab) * ncomp_cd;
      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* gc = g + static_cast<std::size_t>(cd) * nb;
        double s = 0.0;
        for (int p = 0; p < nb; ++p) {
          s += hb[p] * gc[p];
        }
        orow[cd] += s;
      }
    }
  }
}

/// Contracted ERI batch for one (bra, ket) shell-pair quartet in canonical
/// orientation [bra.s1][bra.s2][ket.s1][ket.s2]; `src.next(bp, kp, pg, fv)`
/// decides survival and supplies geometry plus Boys values for each
/// primitive quartet (ScalarPrimSource computes them inline,
/// BatchedPrimSource replays phase-1 state). Fully initializes `out`.
/// `g_scratch` holds the compact G accumulator (ncomp_cd x bra triangle),
/// `rmat_scratch` the gathered R matrix (ket triangle x bra triangle); both
/// grow once and are reused across quartets.
///
/// Dispatches on the angular class: (ssss) collapses to one multiply-add
/// per primitive quartet (R_000 = F_0 exactly -- build_from seeds level 0
/// with 1.0 * fm[0] -- and every triangle is the single point (0,0,0));
/// classes with both sides <= L=2 (s/p/d shell pairs, all of STO-3G and
/// the bulk of any quartet distribution) run constant-L instantiations of
/// the shared body; everything else takes the runtime-L fallback.
template <typename PrimSource>
void eri_quartet_kernel(const ShellPairData& bra, const ShellPairData& ket,
                        PrimSource&& src, std::vector<double>& g_scratch,
                        std::vector<double>& rmat_scratch, RTable& r,
                        double* out) {
  const int lb = bra.lsum();
  const int lk = ket.lsum();

  if (lb + lk == 0) {
    // Term order and product association match the general body
    // ((pref * hval) then * F_0; hb * g; += into out[0]) -- bitwise
    // identical, just without touching the RTable.
    PrimGeom pg;
    FmView fv;
    out[0] = 0.0;
    for (const PrimPairData& bp : bra.prims) {
      double g0 = 0.0;
      for (const PrimPairData& kp : ket.prims) {
        if (!src.next(bp, kp, pg, fv)) continue;
        const double hval = kp.hermite_tri[0];
        if (hval == 0.0) continue;
        g0 += (pg.pref * hval) * fv.fm[0];
      }
      out[0] += bp.hermite_tri[0] * g0;
    }
    return;
  }

  switch (lb * (kMaxSideL + 1) + lk) {
#define MC_ERI_CLASS_CASE(B, K)                                            \
  case (B) * (kMaxSideL + 1) + (K):                                        \
    eri_quartet_kernel_impl<B, K>(bra, ket, src, g_scratch, rmat_scratch,  \
                                  r, out);                                 \
    return;
    MC_ERI_CLASS_CASE(0, 1)
    MC_ERI_CLASS_CASE(0, 2)
    MC_ERI_CLASS_CASE(1, 0)
    MC_ERI_CLASS_CASE(1, 1)
    MC_ERI_CLASS_CASE(1, 2)
    MC_ERI_CLASS_CASE(2, 0)
    MC_ERI_CLASS_CASE(2, 1)
    MC_ERI_CLASS_CASE(2, 2)
#undef MC_ERI_CLASS_CASE
    default:
      eri_quartet_kernel_impl<-1, -1>(bra, ket, src, g_scratch,
                                      rmat_scratch, r, out);
      return;
  }
}

/// Reference kernel: the original nested-loop form over the full Hermite
/// cubes, kept verbatim as the oracle for the restructured kernel above
/// (test_ints pins eri_quartet_kernel == eri_quartet_kernel_ref at 0 ULP
/// per element). Not used by any production path.
template <typename BoysSource>
void eri_quartet_kernel_ref(const ShellPairData& bra,
                            const ShellPairData& ket, BoysSource&& boys_src,
                            std::vector<double>& g_scratch, RTable& r,
                            double* out) {
  const int ncomp_ab = bra.ncomp();
  const int ncomp_cd = ket.ncomp();
  const std::size_t herm_ab = bra.herm_size();
  const int hab = bra.hd;
  const int hcd = ket.hd;
  const std::size_t herm_cd = static_cast<std::size_t>(hcd) * hcd * hcd;
  const int lb = hab - 1;  // bra.l1 + bra.l2
  const int lk = hcd - 1;  // ket.l1 + ket.l2
  const int ltot = lb + lk;

  const std::size_t nout =
      static_cast<std::size_t>(ncomp_ab) * static_cast<std::size_t>(ncomp_cd);
  for (std::size_t i = 0; i < nout; ++i) out[i] = 0.0;

  // G[cd][t,u,v] over the *bra* Hermite range, reused across primitives.
  const std::size_t gsize = static_cast<std::size_t>(ncomp_cd) * herm_ab;
  if (g_scratch.size() < gsize) g_scratch.resize(gsize);
  double* g = g_scratch.data();

  for (const PrimPairData& bp : bra.prims) {
    std::fill_n(g, gsize, 0.0);

    for (const PrimPairData& kp : ket.prims) {
      const PrimGeom pg = prim_geom(bp, kp);
      if (prim_skipped(bp, kp, pg.pref)) continue;
      const FmView fv = boys_src(pg);
      r.build_from(ltot, pg.alpha, pg.pq, fv.fm, fv.stride);

      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* hk = kp.hermite.data() +
                           static_cast<std::size_t>(cd) * herm_cd;
        double* gc = g + static_cast<std::size_t>(cd) * herm_ab;
        for (int tau = 0; tau <= lk; ++tau) {
          for (int nu = 0; nu <= lk - tau; ++nu) {
            for (int phi = 0; phi <= lk - tau - nu; ++phi) {
              const double hval = hk[(tau * hcd + nu) * hcd + phi];
              if (hval == 0.0) continue;
              const double w =
                  pg.pref * (((tau + nu + phi) & 1) ? -hval : hval);
              for (int t = 0; t <= lb; ++t) {
                const int rt = t + tau;
                for (int u = 0; u <= lb - t; ++u) {
                  const int ru = u + nu;
                  double* grow = gc + (t * hab + u) * hab;
                  const int vend = lb - t - u;
                  for (int v = 0; v <= vend; ++v) {
                    grow[v] += w * r(rt, ru, v + phi);
                  }
                }
              }
            }
          }
        }
      }
    }

    // Contract the bra Hermite coefficients against G, triangle-bounded:
    // hb entries with t+u+v > lb are exactly zero by construction.
    for (int ab = 0; ab < ncomp_ab; ++ab) {
      const double* hb =
          bp.hermite.data() + static_cast<std::size_t>(ab) * herm_ab;
      double* orow = out + static_cast<std::size_t>(ab) * ncomp_cd;
      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* gc = g + static_cast<std::size_t>(cd) * herm_ab;
        double s = 0.0;
        for (int t = 0; t <= lb; ++t) {
          for (int u = 0; u <= lb - t; ++u) {
            const std::size_t base = static_cast<std::size_t>(t * hab + u) *
                                     static_cast<std::size_t>(hab);
            for (int v = 0; v <= lb - t - u; ++v) {
              s += hb[base + static_cast<std::size_t>(v)] *
                   gc[base + static_cast<std::size_t>(v)];
            }
          }
        }
        orow[cd] += s;
      }
    }
  }
}

/// Permute a canonical-orientation quartet batch ([b1][b2][k1][k2] with
/// b1 = max(si,sj), etc.) into the caller's [i][j][k][l] layout.
inline void permute_to_caller(const double* canonical, bool swap_ij,
                              bool swap_kl, int ni, int nj, int nk, int nl,
                              double* out) {
  const int nb1 = swap_ij ? nj : ni;
  const int nb2 = swap_ij ? ni : nj;
  const int nk1 = swap_kl ? nl : nk;
  const int nk2 = swap_kl ? nk : nl;
  for (int a = 0; a < nb1; ++a) {
    for (int b = 0; b < nb2; ++b) {
      const int ii = swap_ij ? b : a;
      const int jj = swap_ij ? a : b;
      for (int c = 0; c < nk1; ++c) {
        for (int d = 0; d < nk2; ++d) {
          const int kk = swap_kl ? d : c;
          const int ll = swap_kl ? c : d;
          out[((static_cast<std::size_t>(ii) * nj + jj) * nk + kk) * nl +
              ll] =
              canonical[((static_cast<std::size_t>(a) * nb2 + b) * nk1 + c) *
                            nk2 +
                        d];
        }
      }
    }
  }
}

}  // namespace mc::ints::detail
