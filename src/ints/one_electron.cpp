#include "ints/one_electron.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

namespace {

// Shared loop skeleton: calls `fn(s1, s2, block)` for every unique shell
// pair with `block` the nfunc1 x nfunc2 integral block, then scatters the
// block symmetrically into the matrix.
template <typename BlockFn>
la::Matrix build_one_electron(const basis::BasisSet& bs, BlockFn&& fn) {
  const std::size_t nbf = bs.nbf();
  la::Matrix m(nbf, nbf);
  std::vector<double> block;
  for (std::size_t s1 = 0; s1 < bs.nshells(); ++s1) {
    const basis::Shell& sh1 = bs.shell(s1);
    for (std::size_t s2 = 0; s2 <= s1; ++s2) {
      const basis::Shell& sh2 = bs.shell(s2);
      block.assign(
          static_cast<std::size_t>(sh1.nfunc()) * sh2.nfunc(), 0.0);
      fn(sh1, sh2, block.data());
      for (int f1 = 0; f1 < sh1.nfunc(); ++f1) {
        for (int f2 = 0; f2 < sh2.nfunc(); ++f2) {
          const double v = block[static_cast<std::size_t>(f1) *
                                     sh2.nfunc() + f2];
          m(sh1.first_bf + f1, sh2.first_bf + f2) = v;
          m(sh2.first_bf + f2, sh1.first_bf + f1) = v;
        }
      }
    }
  }
  return m;
}

struct Pair1e {
  double coef;  // c1*c2*f1*f2
  double p;
  std::array<double, 3> P;
  ETable ex, ey, ez;  // built with jmax extended for kinetic
};

}  // namespace

la::Matrix overlap_matrix(const basis::BasisSet& bs) {
  return build_one_electron(bs, [&](const basis::Shell& sh1,
                                    const basis::Shell& sh2, double* block) {
    const auto c1 = basis::cartesian_components(sh1.l);
    const auto c2 = basis::cartesian_components(sh2.l);
    const double abx = sh1.center[0] - sh2.center[0];
    const double aby = sh1.center[1] - sh2.center[1];
    const double abz = sh1.center[2] - sh2.center[2];
    for (int pa = 0; pa < sh1.nprim(); ++pa) {
      for (int pb = 0; pb < sh2.nprim(); ++pb) {
        const double a = sh1.exps[static_cast<std::size_t>(pa)];
        const double b = sh2.exps[static_cast<std::size_t>(pb)];
        const double coef = sh1.coefs[static_cast<std::size_t>(pa)] *
                            sh2.coefs[static_cast<std::size_t>(pb)];
        const double p = a + b;
        const double pref = coef * std::pow(kPi / p, 1.5);
        const ETable ex(sh1.l, sh2.l, a, b, abx);
        const ETable ey(sh1.l, sh2.l, a, b, aby);
        const ETable ez(sh1.l, sh2.l, a, b, abz);
        for (std::size_t f1 = 0; f1 < c1.size(); ++f1) {
          const auto [ix, iy, iz] = c1[f1];
          const double n1 =
              basis::component_norm_ratio(sh1.l, ix, iy, iz);
          for (std::size_t f2 = 0; f2 < c2.size(); ++f2) {
            const auto [jx, jy, jz] = c2[f2];
            const double n2 =
                basis::component_norm_ratio(sh2.l, jx, jy, jz);
            block[f1 * c2.size() + f2] += pref * n1 * n2 *
                                          ex(ix, jx, 0) * ey(iy, jy, 0) *
                                          ez(iz, jz, 0);
          }
        }
      }
    }
  });
}

la::Matrix kinetic_matrix(const basis::BasisSet& bs) {
  return build_one_electron(bs, [&](const basis::Shell& sh1,
                                    const basis::Shell& sh2, double* block) {
    const auto c1 = basis::cartesian_components(sh1.l);
    const auto c2 = basis::cartesian_components(sh2.l);
    const double abx = sh1.center[0] - sh2.center[0];
    const double aby = sh1.center[1] - sh2.center[1];
    const double abz = sh1.center[2] - sh2.center[2];
    for (int pa = 0; pa < sh1.nprim(); ++pa) {
      for (int pb = 0; pb < sh2.nprim(); ++pb) {
        const double a = sh1.exps[static_cast<std::size_t>(pa)];
        const double b = sh2.exps[static_cast<std::size_t>(pb)];
        const double coef = sh1.coefs[static_cast<std::size_t>(pa)] *
                            sh2.coefs[static_cast<std::size_t>(pb)];
        const double p = a + b;
        const double s1d = std::sqrt(kPi / p);  // 1-D overlap prefactor
        // Kinetic needs E up to j+2 in the ket index.
        const ETable ex(sh1.l, sh2.l + 2, a, b, abx);
        const ETable ey(sh1.l, sh2.l + 2, a, b, aby);
        const ETable ez(sh1.l, sh2.l + 2, a, b, abz);

        // 1-D overlap and kinetic factors:
        //   S^{ij} = E_0^{ij} sqrt(pi/p)
        //   T^{ij} = -2 b^2 S^{i,j+2} + b(2j+1) S^{ij} - j(j-1)/2 S^{i,j-2}
        auto s = [&](const ETable& e, int i, int j) {
          return (j < 0) ? 0.0 : e(i, j, 0) * s1d;
        };
        auto t = [&](const ETable& e, int i, int j) {
          return -2.0 * b * b * s(e, i, j + 2) +
                 b * (2 * j + 1) * s(e, i, j) -
                 0.5 * j * (j - 1) * s(e, i, j - 2);
        };

        for (std::size_t f1 = 0; f1 < c1.size(); ++f1) {
          const auto [ix, iy, iz] = c1[f1];
          const double n1 =
              basis::component_norm_ratio(sh1.l, ix, iy, iz);
          for (std::size_t f2 = 0; f2 < c2.size(); ++f2) {
            const auto [jx, jy, jz] = c2[f2];
            const double n2 =
                basis::component_norm_ratio(sh2.l, jx, jy, jz);
            const double kin = t(ex, ix, jx) * s(ey, iy, jy) * s(ez, iz, jz) +
                               s(ex, ix, jx) * t(ey, iy, jy) * s(ez, iz, jz) +
                               s(ex, ix, jx) * s(ey, iy, jy) * t(ez, iz, jz);
            block[f1 * c2.size() + f2] += coef * n1 * n2 * kin;
          }
        }
      }
    }
  });
}

la::Matrix nuclear_attraction_matrix(const basis::BasisSet& bs,
                                     const chem::Molecule& mol) {
  return build_one_electron(bs, [&](const basis::Shell& sh1,
                                    const basis::Shell& sh2, double* block) {
    const auto c1 = basis::cartesian_components(sh1.l);
    const auto c2 = basis::cartesian_components(sh2.l);
    const int ltot = sh1.l + sh2.l;
    const int hd = ltot + 1;
    const double abx = sh1.center[0] - sh2.center[0];
    const double aby = sh1.center[1] - sh2.center[1];
    const double abz = sh1.center[2] - sh2.center[2];
    for (int pa = 0; pa < sh1.nprim(); ++pa) {
      for (int pb = 0; pb < sh2.nprim(); ++pb) {
        const double a = sh1.exps[static_cast<std::size_t>(pa)];
        const double b = sh2.exps[static_cast<std::size_t>(pb)];
        const double coef = sh1.coefs[static_cast<std::size_t>(pa)] *
                            sh2.coefs[static_cast<std::size_t>(pb)];
        const double p = a + b;
        std::array<double, 3> P;
        for (int d = 0; d < 3; ++d) {
          P[d] = (a * sh1.center[d] + b * sh2.center[d]) / p;
        }
        const ETable ex(sh1.l, sh2.l, a, b, abx);
        const ETable ey(sh1.l, sh2.l, a, b, aby);
        const ETable ez(sh1.l, sh2.l, a, b, abz);
        const double pref = -coef * 2.0 * kPi / p;

        for (const chem::Atom& atom : mol.atoms()) {
          const double pc[3] = {P[0] - atom.xyz[0], P[1] - atom.xyz[1],
                                P[2] - atom.xyz[2]};
          const RTable r(ltot, p, pc);
          for (std::size_t f1 = 0; f1 < c1.size(); ++f1) {
            const auto [ix, iy, iz] = c1[f1];
            const double n1 =
                basis::component_norm_ratio(sh1.l, ix, iy, iz);
            for (std::size_t f2 = 0; f2 < c2.size(); ++f2) {
              const auto [jx, jy, jz] = c2[f2];
              const double n2 =
                  basis::component_norm_ratio(sh2.l, jx, jy, jz);
              double sum = 0.0;
              for (int t = 0; t <= ix + jx && t < hd; ++t) {
                const double ext = ex(ix, jx, t);
                if (ext == 0.0) continue;
                for (int u = 0; u <= iy + jy && u < hd; ++u) {
                  const double eyu = ey(iy, jy, u);
                  if (eyu == 0.0) continue;
                  for (int v = 0; v <= iz + jz && v < hd; ++v) {
                    sum += ext * eyu * ez(iz, jz, v) * r(t, u, v);
                  }
                }
              }
              block[f1 * c2.size() + f2] +=
                  pref * atom.z * n1 * n2 * sum;
            }
          }
        }
      }
    }
  });
}

la::Matrix core_hamiltonian(const basis::BasisSet& bs,
                            const chem::Molecule& mol) {
  la::Matrix h = kinetic_matrix(bs);
  h += nuclear_attraction_matrix(bs, mol);
  return h;
}

}  // namespace mc::ints
