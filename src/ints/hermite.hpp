#pragma once
// McMurchie-Davidson Hermite machinery:
//  * E coefficients expanding a 1-D Cartesian Gaussian product in Hermite
//    Gaussians,
//  * the Hermite Coulomb tensor R_{tuv}.
// Reference: McMurchie & Davidson, J. Comput. Phys. 26, 218 (1978); see also
// Helgaker/Jorgensen/Olsen "Molecular Electronic-Structure Theory" ch. 9.

#include <cstddef>
#include <vector>

namespace mc::ints {

/// Table of 1-D Hermite expansion coefficients E_t^{ij} for one primitive
/// pair in one dimension: exponents (a, b), separation AB = A_x - B_x.
/// Valid for 0 <= i <= imax, 0 <= j <= jmax, 0 <= t <= i + j.
class ETable {
 public:
  ETable() = default;
  /// Builds the full table. The Gaussian product prefactor
  /// exp(-a b/(a+b) AB^2) is folded into every coefficient.
  ETable(int imax, int jmax, double a, double b, double ab);

  [[nodiscard]] double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return data_[static_cast<std::size_t>((i * (jmax_ + 1) + j) * tdim_ + t)];
  }

 private:
  int jmax_ = 0;
  int tdim_ = 0;  // imax + jmax + 1
  std::vector<double> data_;
};

/// Hermite Coulomb tensor R_{tuv} = R_{tuv}^{(0)}(alpha, PQ) for
/// 0 <= t+u+v <= ltot. Built from the Boys function by the standard
/// auxiliary-index recursion.
///
/// build() and build_from() reuse internal storage, so a long-lived (e.g.
/// thread_local) instance performs no allocations in the hot
/// primitive-quartet loop.
class RTable {
 public:
  RTable() = default;
  /// Convenience constructor; prefer a reused instance + build() in loops.
  RTable(int ltot, double alpha, const double* pq) { build(ltot, alpha, pq); }

  /// alpha: reduced exponent of the Coulomb kernel; pq = P - Q vector.
  /// Evaluates the Boys function internally and zero-fills the cube, so
  /// reads outside the t+u+v <= ltot triangle return exactly 0.0.
  void build(int ltot, double alpha, const double* pq);

  /// Hot-path variant for callers that batch the Boys evaluation: seeds the
  /// recursion from fm[m * fm_stride] = F_m(alpha |PQ|^2), m = 0..ltot, and
  /// fills ONLY the t+u+v <= ltot triangle (no cube zeroing, no copy) --
  /// entries outside the triangle are stale. The ERI kernel's loops are
  /// triangle-bounded, which is what makes this safe; arithmetic is
  /// identical to build(), so in-triangle values match it bitwise.
  void build_from(int ltot, double alpha, const double* pq, const double* fm,
                  std::size_t fm_stride);

  [[nodiscard]] double operator()(int t, int u, int v) const {
    return data_[static_cast<std::size_t>((t * dim_ + u) * dim_ + v)];
  }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] int dim() const { return dim_; }

 private:
  /// Downward auxiliary-index recursion over ping-ponged level buffers;
  /// seeds[n] must hold (-2 alpha)^n F_n. Writes level 0 into data_.
  void fill_triangle(int ltot, const double* pq, const double* seeds);

  int dim_ = 0;  // ltot + 1
  std::vector<double> data_;
  std::vector<double> scratch_;  // odd recursion levels
};

}  // namespace mc::ints
