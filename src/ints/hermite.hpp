#pragma once
// McMurchie-Davidson Hermite machinery:
//  * E coefficients expanding a 1-D Cartesian Gaussian product in Hermite
//    Gaussians,
//  * the Hermite Coulomb tensor R_{tuv}.
// Reference: McMurchie & Davidson, J. Comput. Phys. 26, 218 (1978); see also
// Helgaker/Jorgensen/Olsen "Molecular Electronic-Structure Theory" ch. 9.

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "ints/boys.hpp"

namespace mc::ints {

/// Table of 1-D Hermite expansion coefficients E_t^{ij} for one primitive
/// pair in one dimension: exponents (a, b), separation AB = A_x - B_x.
/// Valid for 0 <= i <= imax, 0 <= j <= jmax, 0 <= t <= i + j.
class ETable {
 public:
  ETable() = default;
  /// Builds the full table. The Gaussian product prefactor
  /// exp(-a b/(a+b) AB^2) is folded into every coefficient.
  ETable(int imax, int jmax, double a, double b, double ab);

  [[nodiscard]] double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return data_[static_cast<std::size_t>((i * (jmax_ + 1) + j) * tdim_ + t)];
  }

 private:
  int jmax_ = 0;
  int tdim_ = 0;  // imax + jmax + 1
  std::vector<double> data_;
};

/// Hermite Coulomb tensor R_{tuv} = R_{tuv}^{(0)}(alpha, PQ) for
/// 0 <= t+u+v <= ltot. Built from the Boys function by the standard
/// auxiliary-index recursion.
///
/// build() and build_from() reuse internal storage, so a long-lived (e.g.
/// thread_local) instance performs no allocations in the hot
/// primitive-quartet loop.
class RTable {
 public:
  RTable() = default;
  /// Convenience constructor; prefer a reused instance + build() in loops.
  RTable(int ltot, double alpha, const double* pq) { build(ltot, alpha, pq); }

  /// alpha: reduced exponent of the Coulomb kernel; pq = P - Q vector.
  /// Evaluates the Boys function internally and zero-fills the cube, so
  /// reads outside the t+u+v <= ltot triangle return exactly 0.0.
  void build(int ltot, double alpha, const double* pq);

  /// Hot-path variant for callers that batch the Boys evaluation: seeds the
  /// recursion from fm[m * fm_stride] = F_m(alpha |PQ|^2), m = 0..ltot, and
  /// fills ONLY the t+u+v <= ltot triangle (no cube zeroing, no copy) --
  /// entries outside the triangle are stale. The ERI kernel's loops are
  /// triangle-bounded, which is what makes this safe; arithmetic is
  /// identical to build(), so in-triangle values match it bitwise.
  /// Defined inline below so the ERI kernel's constant-ltot instantiations
  /// fully unroll the recursion for the dominant low-L classes.
  void build_from(int ltot, double alpha, const double* pq, const double* fm,
                  std::size_t fm_stride);

  [[nodiscard]] double operator()(int t, int u, int v) const {
    return data_[static_cast<std::size_t>((t * dim_ + u) * dim_ + v)];
  }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] int dim() const { return dim_; }

 private:
  /// Downward auxiliary-index recursion over ping-ponged level buffers;
  /// seeds[n] must hold (-2 alpha)^n F_n. Writes level 0 into data_.
  void fill_triangle(int ltot, const double* pq, const double* seeds);

  int dim_ = 0;  // ltot + 1
  std::vector<double> data_;
  std::vector<double> scratch_;  // odd recursion levels
};

inline void RTable::fill_triangle(int ltot, const double* pq,
                                  const double* seeds) {
  // Level n of the auxiliary recursion lives in data_ (n even) or scratch_
  // (n odd): level n reads only level n+1 (the other buffer), and by the
  // time it overwrites level n+2's cells they are dead. Level 0 -- the
  // result -- therefore lands in data_ with no final copy.
  //
  // Recursions (Helgaker et al. eq. 9.9.18-20):
  //   R_{t+1,u,v}^{(n)} = t R_{t-1,u,v}^{(n+1)} + X_PQ R_{t,u,v}^{(n+1)}
  // and cyclic for u, v. Only the t+u+v <= ltot - n triangle of each level
  // is written, and only the t+u+v <= ltot - n - 1 triangle of the level
  // above is read.
  const int d = dim_;
  auto idx = [d](int t, int u, int v) {
    return static_cast<std::size_t>((t * d + u) * d + v);
  };
  for (int n = ltot; n >= 0; --n) {
    double* lo = (n % 2 == 0) ? data_.data() : scratch_.data();
    lo[idx(0, 0, 0)] = seeds[n];
    if (n == ltot) continue;
    const double* hi = (n % 2 == 0) ? scratch_.data() : data_.data();
    const int lmax = ltot - n;
    for (int t = 0; t <= lmax; ++t) {
      for (int u = 0; u + t <= lmax; ++u) {
        for (int v = 0; v + u + t <= lmax; ++v) {
          if (t + u + v == 0) continue;
          double val;
          if (t > 0) {
            val = pq[0] * hi[idx(t - 1, u, v)];
            if (t > 1) val += (t - 1) * hi[idx(t - 2, u, v)];
          } else if (u > 0) {
            val = pq[1] * hi[idx(t, u - 1, v)];
            if (u > 1) val += (u - 1) * hi[idx(t, u - 2, v)];
          } else {
            val = pq[2] * hi[idx(t, u, v - 1)];
            if (v > 1) val += (v - 1) * hi[idx(t, u, v - 2)];
          }
          lo[idx(t, u, v)] = val;
        }
      }
    }
  }
}

inline void RTable::build_from(int ltot, double alpha, const double* pq,
                               const double* fm, std::size_t fm_stride) {
  MC_CHECK(ltot <= kMaxBoysOrder, "RTable order exceeds Boys table");
  dim_ = ltot + 1;
  const std::size_t sz =
      static_cast<std::size_t>(dim_) * dim_ * dim_;
  if (data_.size() < sz) data_.resize(sz);
  if (scratch_.size() < sz) scratch_.resize(sz);

  double seeds[kMaxBoysOrder + 1];
  double pref = 1.0;
  for (int n = 0; n <= ltot; ++n) {
    seeds[n] = pref * fm[static_cast<std::size_t>(n) * fm_stride];
    pref *= -2.0 * alpha;
  }
  fill_triangle(ltot, pq, seeds);
}

}  // namespace mc::ints
