#include "ints/hermite.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ints/boys.hpp"

namespace mc::ints {

ETable::ETable(int imax, int jmax, double a, double b, double ab)
    : jmax_(jmax), tdim_(imax + jmax + 1) {
  const double p = a + b;
  const double mu = a * b / p;
  const double one_over_2p = 0.5 / p;
  // Gaussian product center offsets.
  const double pa = -b * ab / p;  // P_x - A_x
  const double pb = a * ab / p;   // P_x - B_x

  data_.assign(static_cast<std::size_t>((imax + 1) * (jmax + 1) * tdim_), 0.0);
  auto at = [&](int i, int j, int t) -> double& {
    return data_[static_cast<std::size_t>((i * (jmax_ + 1) + j) * tdim_ + t)];
  };
  auto get = [&](int i, int j, int t) -> double {
    if (i < 0 || j < 0 || t < 0 || t > i + j) return 0.0;
    return at(i, j, t);
  };

  at(0, 0, 0) = std::exp(-mu * ab * ab);

  // Build up i at j = 0:
  //   E_t^{i+1,0} = (1/2p) E_{t-1}^{i,0} + PA E_t^{i,0} + (t+1) E_{t+1}^{i,0}
  for (int i = 0; i < imax; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      at(i + 1, 0, t) = one_over_2p * get(i, 0, t - 1) + pa * get(i, 0, t) +
                        (t + 1) * get(i, 0, t + 1);
    }
  }
  // Build up j for every i:
  //   E_t^{i,j+1} = (1/2p) E_{t-1}^{i,j} + PB E_t^{i,j} + (t+1) E_{t+1}^{i,j}
  for (int i = 0; i <= imax; ++i) {
    for (int j = 0; j < jmax; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        at(i, j + 1, t) = one_over_2p * get(i, j, t - 1) + pb * get(i, j, t) +
                          (t + 1) * get(i, j, t + 1);
      }
    }
  }
}

void RTable::build(int ltot, double alpha, const double* pq) {
  MC_CHECK(ltot <= kMaxBoysOrder, "RTable order exceeds Boys table");
  dim_ = ltot + 1;
  const double r2 = pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2];

  double fm[kMaxBoysOrder + 1];
  boys(ltot, alpha * r2, fm);

  // aux[n][t][u][v]; R_{000}^{(n)} = (-2 alpha)^n F_n(alpha R^2).
  // Recursions (Helgaker et al. eq. 9.9.18-20):
  //   R_{t+1,u,v}^{(n)} = t R_{t-1,u,v}^{(n+1)} + X_PQ R_{t,u,v}^{(n+1)}
  // and cyclic for u, v.
  const int d = dim_;
  const std::size_t sz = static_cast<std::size_t>(d) * d * d;
  auto idx = [d](int t, int u, int v) {
    return static_cast<std::size_t>((t * d + u) * d + v);
  };

  // Level n lives in scratch_[n * sz ...); only R_{000}^{(n)} seeds it.
  scratch_.assign(sz * static_cast<std::size_t>(ltot + 1), 0.0);
  double pref = 1.0;
  for (int n = 0; n <= ltot; ++n) {
    scratch_[static_cast<std::size_t>(n) * sz + idx(0, 0, 0)] = pref * fm[n];
    pref *= -2.0 * alpha;
  }
  // Work downward: fill level n using level n+1.
  for (int n = ltot - 1; n >= 0; --n) {
    double* lo = scratch_.data() + static_cast<std::size_t>(n) * sz;
    const double* hi = scratch_.data() + static_cast<std::size_t>(n + 1) * sz;
    const int lmax = ltot - n;
    for (int t = 0; t <= lmax; ++t) {
      for (int u = 0; u + t <= lmax; ++u) {
        for (int v = 0; v + u + t <= lmax; ++v) {
          if (t + u + v == 0) continue;
          double val;
          if (t > 0) {
            val = pq[0] * hi[idx(t - 1, u, v)];
            if (t > 1) val += (t - 1) * hi[idx(t - 2, u, v)];
          } else if (u > 0) {
            val = pq[1] * hi[idx(t, u - 1, v)];
            if (u > 1) val += (u - 1) * hi[idx(t, u - 2, v)];
          } else {
            val = pq[2] * hi[idx(t, u, v - 1)];
            if (v > 1) val += (v - 1) * hi[idx(t, u, v - 2)];
          }
          lo[idx(t, u, v)] = val;
        }
      }
    }
  }
  data_.assign(scratch_.begin(),
               scratch_.begin() + static_cast<std::ptrdiff_t>(sz));
}

}  // namespace mc::ints
