#include "ints/hermite.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ints/boys.hpp"

namespace mc::ints {

ETable::ETable(int imax, int jmax, double a, double b, double ab)
    : jmax_(jmax), tdim_(imax + jmax + 1) {
  const double p = a + b;
  const double mu = a * b / p;
  const double one_over_2p = 0.5 / p;
  // Gaussian product center offsets.
  const double pa = -b * ab / p;  // P_x - A_x
  const double pb = a * ab / p;   // P_x - B_x

  data_.assign(static_cast<std::size_t>((imax + 1) * (jmax + 1) * tdim_), 0.0);
  auto at = [&](int i, int j, int t) -> double& {
    return data_[static_cast<std::size_t>((i * (jmax_ + 1) + j) * tdim_ + t)];
  };
  auto get = [&](int i, int j, int t) -> double {
    if (i < 0 || j < 0 || t < 0 || t > i + j) return 0.0;
    return at(i, j, t);
  };

  at(0, 0, 0) = std::exp(-mu * ab * ab);

  // Build up i at j = 0:
  //   E_t^{i+1,0} = (1/2p) E_{t-1}^{i,0} + PA E_t^{i,0} + (t+1) E_{t+1}^{i,0}
  for (int i = 0; i < imax; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      at(i + 1, 0, t) = one_over_2p * get(i, 0, t - 1) + pa * get(i, 0, t) +
                        (t + 1) * get(i, 0, t + 1);
    }
  }
  // Build up j for every i:
  //   E_t^{i,j+1} = (1/2p) E_{t-1}^{i,j} + PB E_t^{i,j} + (t+1) E_{t+1}^{i,j}
  for (int i = 0; i <= imax; ++i) {
    for (int j = 0; j < jmax; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        at(i, j + 1, t) = one_over_2p * get(i, j, t - 1) + pb * get(i, j, t) +
                          (t + 1) * get(i, j, t + 1);
      }
    }
  }
}

void RTable::fill_triangle(int ltot, const double* pq, const double* seeds) {
  // Level n of the auxiliary recursion lives in data_ (n even) or scratch_
  // (n odd): level n reads only level n+1 (the other buffer), and by the
  // time it overwrites level n+2's cells they are dead. Level 0 -- the
  // result -- therefore lands in data_ with no final copy.
  //
  // Recursions (Helgaker et al. eq. 9.9.18-20):
  //   R_{t+1,u,v}^{(n)} = t R_{t-1,u,v}^{(n+1)} + X_PQ R_{t,u,v}^{(n+1)}
  // and cyclic for u, v. Only the t+u+v <= ltot - n triangle of each level
  // is written, and only the t+u+v <= ltot - n - 1 triangle of the level
  // above is read.
  const int d = dim_;
  auto idx = [d](int t, int u, int v) {
    return static_cast<std::size_t>((t * d + u) * d + v);
  };
  for (int n = ltot; n >= 0; --n) {
    double* lo = (n % 2 == 0) ? data_.data() : scratch_.data();
    lo[idx(0, 0, 0)] = seeds[n];
    if (n == ltot) continue;
    const double* hi = (n % 2 == 0) ? scratch_.data() : data_.data();
    const int lmax = ltot - n;
    for (int t = 0; t <= lmax; ++t) {
      for (int u = 0; u + t <= lmax; ++u) {
        for (int v = 0; v + u + t <= lmax; ++v) {
          if (t + u + v == 0) continue;
          double val;
          if (t > 0) {
            val = pq[0] * hi[idx(t - 1, u, v)];
            if (t > 1) val += (t - 1) * hi[idx(t - 2, u, v)];
          } else if (u > 0) {
            val = pq[1] * hi[idx(t, u - 1, v)];
            if (u > 1) val += (u - 1) * hi[idx(t, u - 2, v)];
          } else {
            val = pq[2] * hi[idx(t, u, v - 1)];
            if (v > 1) val += (v - 1) * hi[idx(t, u, v - 2)];
          }
          lo[idx(t, u, v)] = val;
        }
      }
    }
  }
}

void RTable::build(int ltot, double alpha, const double* pq) {
  MC_CHECK(ltot <= kMaxBoysOrder, "RTable order exceeds Boys table");
  dim_ = ltot + 1;
  const double r2 = pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2];

  double fm[kMaxBoysOrder + 1];
  boys(ltot, alpha * r2, fm);

  // Zero the full cube so out-of-triangle reads (general consumers like
  // the nuclear-attraction driver index by per-axis bounds) see exact 0.0.
  const std::size_t sz =
      static_cast<std::size_t>(dim_) * dim_ * dim_;
  data_.assign(sz, 0.0);
  if (scratch_.size() < sz) scratch_.resize(sz);

  // R_{000}^{(n)} = (-2 alpha)^n F_n(alpha R^2).
  double seeds[kMaxBoysOrder + 1];
  double pref = 1.0;
  for (int n = 0; n <= ltot; ++n) {
    seeds[n] = pref * fm[n];
    pref *= -2.0 * alpha;
  }
  fill_triangle(ltot, pq, seeds);
}

void RTable::build_from(int ltot, double alpha, const double* pq,
                        const double* fm, std::size_t fm_stride) {
  MC_CHECK(ltot <= kMaxBoysOrder, "RTable order exceeds Boys table");
  dim_ = ltot + 1;
  const std::size_t sz =
      static_cast<std::size_t>(dim_) * dim_ * dim_;
  if (data_.size() < sz) data_.resize(sz);
  if (scratch_.size() < sz) scratch_.resize(sz);

  double seeds[kMaxBoysOrder + 1];
  double pref = 1.0;
  for (int n = 0; n <= ltot; ++n) {
    seeds[n] = pref * fm[static_cast<std::size_t>(n) * fm_stride];
    pref *= -2.0 * alpha;
  }
  fill_triangle(ltot, pq, seeds);
}

}  // namespace mc::ints
