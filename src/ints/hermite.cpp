#include "ints/hermite.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ints/boys.hpp"

namespace mc::ints {

ETable::ETable(int imax, int jmax, double a, double b, double ab)
    : jmax_(jmax), tdim_(imax + jmax + 1) {
  const double p = a + b;
  const double mu = a * b / p;
  const double one_over_2p = 0.5 / p;
  // Gaussian product center offsets.
  const double pa = -b * ab / p;  // P_x - A_x
  const double pb = a * ab / p;   // P_x - B_x

  data_.assign(static_cast<std::size_t>((imax + 1) * (jmax + 1) * tdim_), 0.0);
  auto at = [&](int i, int j, int t) -> double& {
    return data_[static_cast<std::size_t>((i * (jmax_ + 1) + j) * tdim_ + t)];
  };
  auto get = [&](int i, int j, int t) -> double {
    if (i < 0 || j < 0 || t < 0 || t > i + j) return 0.0;
    return at(i, j, t);
  };

  at(0, 0, 0) = std::exp(-mu * ab * ab);

  // Build up i at j = 0:
  //   E_t^{i+1,0} = (1/2p) E_{t-1}^{i,0} + PA E_t^{i,0} + (t+1) E_{t+1}^{i,0}
  for (int i = 0; i < imax; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      at(i + 1, 0, t) = one_over_2p * get(i, 0, t - 1) + pa * get(i, 0, t) +
                        (t + 1) * get(i, 0, t + 1);
    }
  }
  // Build up j for every i:
  //   E_t^{i,j+1} = (1/2p) E_{t-1}^{i,j} + PB E_t^{i,j} + (t+1) E_{t+1}^{i,j}
  for (int i = 0; i <= imax; ++i) {
    for (int j = 0; j < jmax; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        at(i, j + 1, t) = one_over_2p * get(i, j, t - 1) + pb * get(i, j, t) +
                          (t + 1) * get(i, j, t + 1);
      }
    }
  }
}

void RTable::build(int ltot, double alpha, const double* pq) {
  MC_CHECK(ltot <= kMaxBoysOrder, "RTable order exceeds Boys table");
  dim_ = ltot + 1;
  const double r2 = pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2];

  double fm[kMaxBoysOrder + 1];
  boys(ltot, alpha * r2, fm);

  // Zero the full cube so out-of-triangle reads (general consumers like
  // the nuclear-attraction driver index by per-axis bounds) see exact 0.0.
  const std::size_t sz =
      static_cast<std::size_t>(dim_) * dim_ * dim_;
  data_.assign(sz, 0.0);
  if (scratch_.size() < sz) scratch_.resize(sz);

  // R_{000}^{(n)} = (-2 alpha)^n F_n(alpha R^2).
  double seeds[kMaxBoysOrder + 1];
  double pref = 1.0;
  for (int n = 0; n <= ltot; ++n) {
    seeds[n] = pref * fm[n];
    pref *= -2.0 * alpha;
  }
  fill_triangle(ltot, pq, seeds);
}

}  // namespace mc::ints
