#pragma once
// Precomputed shell-pair data for the McMurchie-Davidson engine. For every
// pair of shells we store, per surviving primitive pair, the Gaussian
// product parameters and the *Hermite product coefficients*
//   H[(ab component), (t,u,v)] =
//      c_a c_b f_a f_b E_t^{ax,bx} E_u^{ay,by} E_v^{az,bz}
// (f = per-component normalization ratios), which is everything the ERI and
// one-electron drivers need from the bra or ket side.

#include <array>
#include <cstddef>
#include <vector>

#include "basis/basis_set.hpp"

namespace mc::ints {

struct PrimPairData {
  double a = 0.0;                ///< bra exponent
  double b = 0.0;                ///< ket exponent
  double p = 0.0;                ///< a + b
  double coef = 0.0;             ///< c_a * c_b (normalized contraction coefs)
  std::array<double, 3> P{};     ///< Gaussian product center
  /// max |hermite| -- the primitive pair's combined Hermite weight, used by
  /// the ERI kernel's primitive-level prescreen.
  double hmax = 0.0;
  /// Hermite product coefficients, layout [comp][t*hd*hd + u*hd + v] with
  /// hd = l1 + l2 + 1 and comp = a_comp * ncart(l2) + b_comp.
  std::vector<double> hermite;
  /// The same coefficients compacted to the t+u+v <= l1+l2 triangle,
  /// layout [comp][p] with p enumerating (t, u, v) lexicographically
  /// (hermite_tri_size(l1+l2) entries per component). Every entry of
  /// `hermite` outside the triangle is exactly zero, so this carries the
  /// full information; the ERI kernel contracts against it with
  /// unit-stride inner loops (DESIGN.md section 12.7).
  std::vector<double> hermite_tri;
};

/// Number of Hermite triangle entries {(t,u,v) : t+u+v <= l}: C(l+3, 3).
constexpr int hermite_tri_size(int l) {
  return (l + 1) * (l + 2) * (l + 3) / 6;
}

struct ShellPairData {
  std::size_t s1 = 0, s2 = 0;    ///< shell indices (s1 >= s2 by convention)
  int l1 = 0, l2 = 0;
  int hd = 1;                    ///< Hermite dimension per axis: l1+l2+1
  std::vector<PrimPairData> prims;

  [[nodiscard]] int ncomp() const;
  [[nodiscard]] std::size_t herm_size() const {
    return static_cast<std::size_t>(hd) * hd * hd;
  }
  /// Combined angular momentum l1 + l2: one side of the batched pipeline's
  /// (Lbra, Lket) class key, and the side's Hermite triangle bound.
  [[nodiscard]] int lsum() const { return l1 + l2; }
};

/// Build the pair data for two shells. Primitive pairs whose Gaussian
/// product prefactor is below `prim_cutoff` are dropped (standard practice;
/// harmless at 1e-16 relative to unit-normalized shells).
ShellPairData make_shell_pair(const basis::Shell& sh1, const basis::Shell& sh2,
                              double prim_cutoff = 1e-16);

/// All unique shell pairs (s1 >= s2) of a basis, indexed by
/// s1*(s1+1)/2 + s2.
class ShellPairList {
 public:
  explicit ShellPairList(const basis::BasisSet& bs,
                         double prim_cutoff = 1e-16);

  [[nodiscard]] const ShellPairData& pair(std::size_t s1,
                                          std::size_t s2) const;
  [[nodiscard]] std::size_t npairs() const { return pairs_.size(); }

 private:
  std::vector<ShellPairData> pairs_;
};

}  // namespace mc::ints
