#include "ints/boys.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::ints {

void boys(int mmax, double t, double* out) {
  MC_CHECK(mmax >= 0 && mmax <= kMaxBoysOrder, "boys order out of range");
  MC_CHECK(t >= 0.0, "boys argument must be non-negative");

  if (t < 1e-13) {
    // F_m(0) = 1/(2m+1); first-order Taylor keeps continuity.
    for (int m = 0; m <= mmax; ++m) {
      out[m] = 1.0 / (2 * m + 1) - t / (2 * m + 3);
    }
    return;
  }

  if (t > 50.0) {
    // Asymptotic: F_0(T) ~ (1/2) sqrt(pi/T); exp(-T) < 2e-22 is negligible,
    // so the upward recursion F_{m+1} = ((2m+1) F_m - exp(-T)) / (2T) is
    // both accurate and stable here.
    const double emt = std::exp(-t);
    out[0] = 0.5 * std::sqrt(kPi / t);
    for (int m = 0; m < mmax; ++m) {
      out[m + 1] = ((2 * m + 1) * out[m] - emt) / (2.0 * t);
    }
    return;
  }

  // Moderate T: evaluate F_mmax by its (convergent, positive-term) series
  //   F_m(T) = exp(-T) * sum_{k>=0} (2T)^k / ((2m+1)(2m+3)...(2m+2k+1))
  // then recur downward (stable direction):
  //   F_m = (2T F_{m+1} + exp(-T)) / (2m+1).
  const double emt = std::exp(-t);
  double term = 1.0 / (2 * mmax + 1);
  double sum = term;
  for (int k = 1; k < 10000; ++k) {
    term *= 2.0 * t / (2 * mmax + 2 * k + 1);
    sum += term;
    if (term < sum * 1e-16) break;
  }
  out[mmax] = emt * sum;
  for (int m = mmax; m > 0; --m) {
    out[m - 1] = (2.0 * t * out[m] + emt) / (2 * m - 1);
  }
}

double boys_single(int m, double t) {
  double buf[kMaxBoysOrder + 1];
  boys(m, t, buf);
  return buf[m];
}

}  // namespace mc::ints
