#include "ints/boys.hpp"

#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::ints {

namespace {

// Grid-seeded Taylor evaluation (Gill/Head-Gordon style, the scheme GAMESS
// and libint use): F_m(T0 + d) = sum_k F_{m+k}(T0) (-d)^k / k!. With pitch
// 0.05 (|d| <= 0.025) and 7 terms the truncation error is bounded by
// (d^7/7!) * F_{m+7}/F_m <= 1.3e-15 *relative* (F_{m+k} <= F_m), so the
// table path matches the reference series to rounding while replacing its
// data-dependent loop with six fused multiply-adds.
constexpr int kTaylorTerms = 7;
constexpr double kGridStep = 0.05;
constexpr double kInvGridStep = 20.0;  // exactly 1/kGridStep
constexpr int kGridPoints = 1001;      // T0 = 0, 0.05, ..., 50.0
constexpr int kTabOrders = kMaxBoysOrder + kTaylorTerms;  // orders 0..38

// Reference evaluation of F_mmax(T) by the convergent positive-term series
//   F_m(T) = exp(-T) * sum_{k>=0} (2T)^k / ((2m+1)(2m+3)...(2m+2k+1)),
// used only to populate the grid (and exact at T = 0: F_m(0) = 1/(2m+1)).
double boys_series_top(int mmax, double t) {
  const double emt = std::exp(-t);
  double term = 1.0 / (2 * mmax + 1);
  double sum = term;
  for (int k = 1; k < 10000; ++k) {
    term *= 2.0 * t / (2 * mmax + 2 * k + 1);
    sum += term;
    if (term < sum * 1e-16) break;
  }
  return emt * sum;
}

// tab[i * kTabOrders + m] = F_m(i * kGridStep): one row of 39 orders per
// grid point keeps a seed's reads inside one cache line pair. Seeded at the
// top order by the series and filled downward by the stable recursion.
const double* boys_table() {
  static const std::vector<double> tab = [] {
    std::vector<double> t(static_cast<std::size_t>(kGridPoints) * kTabOrders);
    for (int i = 0; i < kGridPoints; ++i) {
      const double t0 = i * kGridStep;
      const double emt = std::exp(-t0);
      double* row = t.data() + static_cast<std::size_t>(i) * kTabOrders;
      row[kTabOrders - 1] = boys_series_top(kTabOrders - 1, t0);
      for (int m = kTabOrders - 1; m > 0; --m) {
        row[m - 1] = (2.0 * t0 * row[m] + emt) / (2 * m - 1);
      }
    }
    return t;
  }();
  return tab.data();
}

// 1/k! for the Taylor terms, folded into Horner coefficients.
constexpr double kInvFact[kTaylorTerms] = {
    1.0, 1.0, 1.0 / 2, 1.0 / 6, 1.0 / 24, 1.0 / 120, 1.0 / 720};

/// Seed F_m(t) for t in [0, kBoysTableTmax). Deterministic fixed-order
/// Horner evaluation -- the value depends only on (m, t), never on the
/// requested mmax or on batch composition.
inline double boys_seed(int m, double t) {
  const int i = static_cast<int>(t * kInvGridStep + 0.5);
  const double d = t - i * kGridStep;
  const double* row = boys_table() + static_cast<std::size_t>(i) * kTabOrders
                      + m;
  double s = row[6] * kInvFact[6];
  s = row[5] * kInvFact[5] - d * s;
  s = row[4] * kInvFact[4] - d * s;
  s = row[3] * kInvFact[3] - d * s;
  s = row[2] * kInvFact[2] - d * s;
  s = row[1] * kInvFact[1] - d * s;
  return row[0] - d * s;
}

/// Large-T path: F_0(T) ~ (1/2) sqrt(pi/T); exp(-T) < 2e-22 is negligible,
/// so the upward recursion F_{m+1} = ((2m+1) F_m - exp(-T)) / (2T) is both
/// accurate and stable. Upward direction means F_m never depends on the
/// requested mmax here either. `stride` separates consecutive orders.
inline void boys_asymptotic(int mmax, double t, double* out,
                            std::size_t stride) {
  const double emt = std::exp(-t);
  out[0] = 0.5 * std::sqrt(kPi / t);
  for (int m = 0; m < mmax; ++m) {
    out[(static_cast<std::size_t>(m) + 1) * stride] =
        ((2 * m + 1) * out[static_cast<std::size_t>(m) * stride] - emt) /
        (2.0 * t);
  }
}

}  // namespace

void boys(int mmax, double t, double* out) {
  MC_CHECK(mmax >= 0 && mmax <= kMaxBoysOrder, "boys order out of range");
  MC_CHECK(t >= 0.0, "boys argument must be non-negative");

  if (t >= kBoysTableTmax) {
    boys_asymptotic(mmax, t, out, 1);
    return;
  }
  // F_0 alone needs no downward recursion, hence no exp(-T); this is the
  // (ssss) hot case. Value unchanged: boys_seed is the mmax-independent
  // table evaluation all orders use.
  if (mmax == 0) {
    out[0] = boys_seed(0, t);
    return;
  }
  const double emt = std::exp(-t);
  out[mmax] = boys_seed(mmax, t);
  for (int m = mmax; m > 0; --m) {
    out[m - 1] = (2.0 * t * out[m] + emt) / (2 * m - 1);
  }
}

void boys_batch(int mmax, std::size_t n, const double* t, double* fm) {
  MC_CHECK(mmax >= 0 && mmax <= kMaxBoysOrder, "boys order out of range");

  // Order-0 batches ((ssss) classes) skip the recursion entirely, so no
  // exp(-T) is needed; matches boys() element for element.
  if (mmax == 0) {
    for (std::size_t e = 0; e < n; ++e) {
      MC_CHECK(t[e] >= 0.0, "boys argument must be non-negative");
      fm[e] = (t[e] >= kBoysTableTmax) ? 0.5 * std::sqrt(kPi / t[e])
                                       : boys_seed(0, t[e]);
    }
    return;
  }

  // Pass 1: per-element top-order seed and exp(-T); the (rare, usually
  // Schwarz-screened) asymptotic elements are finished here and excluded
  // from the recursion by a negative emt marker (true emt is positive).
  thread_local std::vector<double> emt_buf;
  if (emt_buf.size() < n) emt_buf.resize(n);
  double* emt = emt_buf.data();
  bool any_asym = false;
  for (std::size_t e = 0; e < n; ++e) {
    MC_CHECK(t[e] >= 0.0, "boys argument must be non-negative");
    if (t[e] >= kBoysTableTmax) {
      boys_asymptotic(mmax, t[e], fm + e, n);
      emt[e] = -1.0;
      any_asym = true;
    } else {
      fm[static_cast<std::size_t>(mmax) * n + e] = boys_seed(mmax, t[e]);
      emt[e] = std::exp(-t[e]);
    }
  }

  // Pass 2: downward recursion, arithmetic identical to boys(). The
  // common all-table case runs branch-free with a unit-stride inner loop
  // over the batch -- the SIMD axis.
  if (!any_asym) {
    for (int m = mmax; m > 0; --m) {
      double* lo = fm + static_cast<std::size_t>(m - 1) * n;
      const double* hi = fm + static_cast<std::size_t>(m) * n;
#pragma omp simd
      for (std::size_t e = 0; e < n; ++e) {
        lo[e] = (2.0 * t[e] * hi[e] + emt[e]) / (2 * m - 1);
      }
    }
    return;
  }
  for (std::size_t e = 0; e < n; ++e) {
    if (emt[e] < 0.0) continue;  // asymptotic element, already complete
    for (int m = mmax; m > 0; --m) {
      fm[static_cast<std::size_t>(m - 1) * n + e] =
          (2.0 * t[e] * fm[static_cast<std::size_t>(m) * n + e] + emt[e]) /
          (2 * m - 1);
    }
  }
}

double boys_single(int m, double t) {
  double buf[kMaxBoysOrder + 1];
  boys(m, t, buf);
  return buf[m];
}

}  // namespace mc::ints
