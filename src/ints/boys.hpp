#pragma once
// Boys function F_m(T) = int_0^1 t^(2m) exp(-T t^2) dt, the radial kernel of
// all Gaussian Coulomb integrals (nuclear attraction and ERIs).

#include <cstddef>

namespace mc::ints {

/// Maximum Boys order the engine will ever request: 4 shells x l<=4 plus
/// margin. (The built-in bases stop at d, but the engine is general.)
inline constexpr int kMaxBoysOrder = 32;

/// Fill out[0..mmax] with F_m(T). Accurate to ~1e-14 relative for the
/// supported range. Handles T = 0 and very large T.
void boys(int mmax, double t, double* out);

/// Convenience: single order.
double boys_single(int m, double t);

}  // namespace mc::ints
