#pragma once
// Boys function F_m(T) = int_0^1 t^(2m) exp(-T t^2) dt, the radial kernel of
// all Gaussian Coulomb integrals (nuclear attraction and ERIs).
//
// Evaluation scheme (DESIGN.md section 12.2): for T below kBoysTableTmax the
// top order F_mmax is seeded by a 7-term Taylor expansion off a precomputed
// uniform grid (pitch 0.05, relative error ~1e-15), followed by the stable
// downward recursion F_{m-1} = (2T F_m + e^-T)/(2m-1); above the switch the
// e^-T term is negligible and the closed-form asymptotic F_0 plus upward
// recursion is exact to rounding. boys_batch() applies the identical
// per-element arithmetic over a contiguous batch of T values so the
// downward recursion runs branch-free across the batch (the ERI pipeline's
// SIMD axis); boys() and boys_batch() agree bitwise element for element.

#include <cstddef>

namespace mc::ints {

/// Maximum Boys order the engine will ever request: 4 shells x l<=4 plus
/// margin. (The built-in bases stop at d, but the engine is general.)
inline constexpr int kMaxBoysOrder = 32;

/// Table/asymptotic switch: below, grid Taylor seed + downward recursion;
/// at or above, closed-form F_0 + upward recursion (e^-T < 2e-22).
inline constexpr double kBoysTableTmax = 50.0;

/// Fill out[0..mmax] with F_m(T). Accurate to ~1e-14 relative for the
/// supported range. Handles T = 0 and very large T.
void boys(int mmax, double t, double* out);

/// Batched evaluation: fm[m * n + e] = F_m(t[e]) for 0 <= m <= mmax,
/// 0 <= e < n (structure-of-arrays so the downward recursion's inner loop
/// runs unit-stride over the batch). Bitwise identical, element for
/// element, to boys(mmax, t[e], ...) -- the property the batched ERI
/// pipeline's scalar-vs-batched 1-ULP contract rests on.
void boys_batch(int mmax, std::size_t n, const double* t, double* fm);

/// Convenience: single order.
double boys_single(int m, double t);

}  // namespace mc::ints
