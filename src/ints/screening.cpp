#include "ints/screening.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mc::ints {

Screening::Screening(const EriEngine& eri, double threshold)
    : nshells_(eri.basis_set().nshells()), threshold_(threshold) {
  MC_CHECK(threshold > 0.0, "screening threshold must be positive");
  q_.assign(nshells_ * nshells_, 0.0);

  std::vector<double> batch;
  const auto& bs = eri.basis_set();
  for (std::size_t s1 = 0; s1 < nshells_; ++s1) {
    for (std::size_t s2 = 0; s2 <= s1; ++s2) {
      batch.assign(eri.batch_size(s1, s2, s1, s2), 0.0);
      eri.compute(s1, s2, s1, s2, batch.data());
      // Diagonal elements (ab|ab) of the batch bound the whole class; take
      // the max over components for a shell-level bound.
      const int n1 = bs.shell(s1).nfunc();
      const int n2 = bs.shell(s2).nfunc();
      double m = 0.0;
      for (int a = 0; a < n1; ++a) {
        for (int b = 0; b < n2; ++b) {
          const std::size_t ab = static_cast<std::size_t>(a) * n2 + b;
          const double v = batch[(ab * n1 + a) * n2 + b];  // (ab|ab)
          m = std::max(m, std::abs(v));
        }
      }
      const double bound = std::sqrt(m);
      q_[s1 * nshells_ + s2] = bound;
      q_[s2 * nshells_ + s1] = bound;
      qmax_ = std::max(qmax_, bound);
    }
  }
}

std::vector<double> Screening::unique_pair_bounds() const {
  std::vector<double> out;
  out.reserve(nshells_ * (nshells_ + 1) / 2);
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out.push_back(q(i, j));
  }
  return out;
}

std::size_t Screening::count_surviving_quartets() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= i; ++k) {
        const std::size_t lmax = (k == i) ? j : k;
        for (std::size_t l = 0; l <= lmax; ++l) {
          if (keep(i, j, k, l)) ++n;
        }
      }
    }
  }
  return n;
}

std::size_t Screening::total_quartets() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= i; ++k) {
        n += ((k == i) ? j : k) + 1;
      }
    }
  }
  return n;
}

}  // namespace mc::ints
