#include "ints/screening.hpp"

#include <algorithm>
#include <cmath>

#include "common/access.hpp"
#include "common/error.hpp"
#include "common/tsan_annotations.hpp"

namespace mc::ints {

Screening::Screening(const EriEngine& eri, double threshold)
    : nshells_(eri.basis_set().nshells()), threshold_(threshold) {
  MC_CHECK(threshold > 0.0, "screening threshold must be positive");
  q_.assign(nshells_ * nshells_, 0.0);

  // Canonical-pair decode table: flat index p -> (i, j), i >= j. Built
  // once; the Fock builders' merged-index kl loops use it instead of the
  // per-iteration sqrt decode of unpack_pair.
  const std::size_t npairs = nshells_ * (nshells_ + 1) / 2;
  pair_i_.resize(npairs);
  pair_j_.resize(npairs);
  {
    std::size_t p = 0;
    for (std::size_t i = 0; i < nshells_; ++i) {
      for (std::size_t j = 0; j <= i; ++j, ++p) {
        pair_i_[p] = static_cast<std::uint32_t>(i);
        pair_j_[p] = static_cast<std::uint32_t>(j);
      }
    }
  }

  const auto& bs = eri.basis_set();
  // The diagonal (ij|ij) sweep is pure setup but O(nshells^2) ERI batches:
  // parallelize over the flat pair range. compute() is reentrant
  // (thread-local scratch) and every iteration writes disjoint q_ entries.
  // The release/acquire pair teaches TSan about libgomp's fork/join edges
  // (see common/tsan_annotations.hpp).
  MC_TSAN_RELEASE(q_.data());
#pragma omp parallel default(shared)
  {
    MC_TSAN_ACQUIRE(q_.data());
    // Every iteration writes a disjoint q_ pair; the slice annotation
    // (common/access.hpp) is the sanctioned route for such exclusive
    // writes to shared state inside a parallel region (MC-OMP-002).
    const acc::OwnedSlice<double> qv(q_.data(), q_.size());
    std::vector<double> batch;
#pragma omp for schedule(dynamic)
    for (long p = 0; p < static_cast<long>(npairs); ++p) {
      const std::size_t s1 = pair_i_[static_cast<std::size_t>(p)];
      const std::size_t s2 = pair_j_[static_cast<std::size_t>(p)];
      ensure_batch_size(batch, eri.batch_size(s1, s2, s1, s2));
      eri.compute(s1, s2, s1, s2, batch.data());
      // Diagonal elements (ab|ab) of the batch bound the whole class; take
      // the max over components for a shell-level bound.
      const int n1 = bs.shell(s1).nfunc();
      const int n2 = bs.shell(s2).nfunc();
      double m = 0.0;
      for (int a = 0; a < n1; ++a) {
        for (int b = 0; b < n2; ++b) {
          const std::size_t ab = static_cast<std::size_t>(a) * n2 + b;
          const double v = batch[(ab * n1 + a) * n2 + b];  // (ab|ab)
          m = std::max(m, std::abs(v));
        }
      }
      const double bound = std::sqrt(m);
      qv.set(s1 * nshells_ + s2, bound);
      qv.set(s2 * nshells_ + s1, bound);
    }
    MC_TSAN_RELEASE(q_.data());
  }
  MC_TSAN_ACQUIRE(q_.data());
  MC_TSAN_OMP_QUIESCE();  // fresh workers for the next region under TSan

  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) qmax_ = std::max(qmax_, q(i, j));
  }

  build_pair_lists();
}

void Screening::build_pair_lists() {
  // Compact the statically surviving pairs (anything keep_pair rejects can
  // never clear the quartet bound with any partner).
  sorted_pairs_.clear();
  for (std::size_t p = 0; p < pair_i_.size(); ++p) {
    const std::size_t i = pair_i_[p];
    const std::size_t j = pair_j_[p];
    if (!keep_pair(i, j)) continue;
    sorted_pairs_.push_back({i, j, p, q(i, j)});
  }

  // Largest-first with a deterministic tie-break: every rank sorts the
  // identical data to the identical order, which the shared DLB counter
  // relies on.
  std::sort(sorted_pairs_.begin(), sorted_pairs_.end(),
            [](const ScreenedPair& a, const ScreenedPair& b) {
              if (a.q != b.q) return a.q > b.q;
              return a.canonical < b.canonical;
            });

  // Bra-grouped variant: group pairs by i so the shared-Fock lazy FI flush
  // still fires once per shell; order groups by their estimated kl-loop
  // work (sum of canonical+1 = the merged kl trip counts), heaviest first.
  std::vector<double> shell_work(nshells_, 0.0);
  for (const ScreenedPair& sp : sorted_pairs_) {
    shell_work[sp.i] += static_cast<double>(sp.canonical + 1);
  }
  sorted_bra_shells_.clear();
  for (std::size_t i = 0; i < nshells_; ++i) {
    if (shell_work[i] > 0.0) sorted_bra_shells_.push_back(i);
  }
  std::sort(sorted_bra_shells_.begin(), sorted_bra_shells_.end(),
            [&](std::size_t a, std::size_t b) {
              if (shell_work[a] != shell_work[b]) {
                return shell_work[a] > shell_work[b];
              }
              return a < b;
            });

  bra_grouped_pairs_ = sorted_pairs_;
  std::vector<std::size_t> shell_order(nshells_, 0);
  for (std::size_t r = 0; r < sorted_bra_shells_.size(); ++r) {
    shell_order[sorted_bra_shells_[r]] = r;
  }
  std::sort(bra_grouped_pairs_.begin(), bra_grouped_pairs_.end(),
            [&](const ScreenedPair& a, const ScreenedPair& b) {
              if (a.i != b.i) return shell_order[a.i] < shell_order[b.i];
              if (a.q != b.q) return a.q > b.q;
              return a.canonical < b.canonical;
            });
}

std::vector<double> Screening::unique_pair_bounds() const {
  std::vector<double> out;
  out.reserve(nshells_ * (nshells_ + 1) / 2);
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out.push_back(q(i, j));
  }
  return out;
}

std::size_t Screening::count_surviving_quartets() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= i; ++k) {
        const std::size_t lmax = (k == i) ? j : k;
        for (std::size_t l = 0; l <= lmax; ++l) {
          if (keep(i, j, k, l)) ++n;
        }
      }
    }
  }
  return n;
}

std::size_t Screening::total_quartets() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nshells_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= i; ++k) {
        n += ((k == i) ? j : k) + 1;
      }
    }
  }
  return n;
}

}  // namespace mc::ints
