#pragma once
// Multipole (dipole) integrals: <a| r - O |b> over the basis, from the same
// Hermite E tables as the overlap. Needed by the property layer (dipole
// moments, which GAMESS prints after every SCF).

#include <array>

#include "basis/basis_set.hpp"
#include "la/matrix.hpp"

namespace mc::ints {

/// The three Cartesian dipole matrices M_d[a][b] = <a| (r_d - origin_d) |b>,
/// d = x, y, z. Origin in Bohr.
std::array<la::Matrix, 3> dipole_matrices(
    const basis::BasisSet& bs, const std::array<double, 3>& origin = {});

}  // namespace mc::ints
