#pragma once
// General-L electron repulsion integral (ERI) engine, McMurchie-Davidson
// scheme. Computes contracted shell quartets (ij|kl) in chemists' notation:
//
//   (ij|kl) = integral phi_i(1) phi_j(1) 1/r12 phi_k(2) phi_l(2)
//
// compute() is const and reentrant: safe to call concurrently from OpenMP
// threads (per-thread scratch is kept in thread_local workspaces). This is
// the property the paper's hybrid algorithms rely on -- the ERI kernel
// itself has no shared mutable state.

#include <cstddef>
#include <vector>

#include "basis/basis_set.hpp"
#include "ints/shell_pair.hpp"

namespace mc::ints {

/// Grow a quartet batch buffer to at least `n` doubles WITHOUT clearing.
///
/// Output contract: compute_eri_canonical (and therefore EriEngine::
/// compute) fully initializes its output -- every one of the `n` batch
/// elements is zeroed or assigned inside the kernel before it returns.
/// Callers must therefore not pay an O(n) `assign(n, 0.0)` per quartet
/// just to size the buffer; use this helper. The buffer never shrinks, so
/// after the first few quartets the call is a branch and nothing else.
/// Elements beyond `n` are stale -- consumers must index only [0, n).
inline void ensure_batch_size(std::vector<double>& buf, std::size_t n) {
  if (buf.size() < n) buf.resize(n);
}

/// Low-level kernel: contracted ERI batch for a bra/ket pair of
/// precomputed ShellPairData, written in canonical orientation
/// [bra.s1][bra.s2][ket.s1][ket.s2]. Fully initializes `out` (see
/// ensure_batch_size); reentrant (thread-local scratch).
/// EriEngine::compute wraps this with index permutation; the knlsim
/// workload model calls it directly to evaluate isolated Schwarz
/// diagonals (ab|ab) without building a full engine.
void compute_eri_canonical(const ShellPairData& bra,
                           const ShellPairData& ket, double* out);

class EriEngine {
 public:
  /// Precomputes shell-pair data for all unique pairs of the basis.
  explicit EriEngine(const basis::BasisSet& bs);

  /// Computes the full Cartesian batch for shells (si sj | sk sl) into
  /// `out`, laid out [a][b][c][d] row-major with a over si's components,
  /// etc. `out` must hold nfunc(si)*nfunc(sj)*nfunc(sk)*nfunc(sl) doubles;
  /// every element is written (callers need not pre-zero the buffer).
  void compute(std::size_t si, std::size_t sj, std::size_t sk,
               std::size_t sl, double* out) const;

  /// Number of doubles compute() writes for this quartet.
  [[nodiscard]] std::size_t batch_size(std::size_t si, std::size_t sj,
                                       std::size_t sk, std::size_t sl) const;

  [[nodiscard]] const basis::BasisSet& basis_set() const { return *bs_; }
  [[nodiscard]] const ShellPairList& pairs() const { return pairs_; }

  /// Approximate FLOP-ish cost weight of a quartet: used by the load-balance
  /// simulator to weight tasks. Proportional to
  /// nprim(ij)*nprim(kl)*ncomp(ij)*ncomp(kl).
  [[nodiscard]] double quartet_cost_weight(std::size_t si, std::size_t sj,
                                           std::size_t sk,
                                           std::size_t sl) const;

 private:
  const basis::BasisSet* bs_;
  ShellPairList pairs_;
};

}  // namespace mc::ints
