#include "ints/shell_pair.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

int ShellPairData::ncomp() const {
  return basis::ncart(l1) * basis::ncart(l2);
}

ShellPairData make_shell_pair(const basis::Shell& sh1,
                              const basis::Shell& sh2, double prim_cutoff) {
  ShellPairData sp;
  sp.l1 = sh1.l;
  sp.l2 = sh2.l;
  sp.hd = sh1.l + sh2.l + 1;

  const auto comps1 = basis::cartesian_components(sh1.l);
  const auto comps2 = basis::cartesian_components(sh2.l);
  std::vector<double> norm1(comps1.size()), norm2(comps2.size());
  for (std::size_t c = 0; c < comps1.size(); ++c) {
    norm1[c] = basis::component_norm_ratio(sh1.l, comps1[c][0], comps1[c][1],
                                           comps1[c][2]);
  }
  for (std::size_t c = 0; c < comps2.size(); ++c) {
    norm2[c] = basis::component_norm_ratio(sh2.l, comps2[c][0], comps2[c][1],
                                           comps2[c][2]);
  }

  const double abx = sh1.center[0] - sh2.center[0];
  const double aby = sh1.center[1] - sh2.center[1];
  const double abz = sh1.center[2] - sh2.center[2];
  const double ab2 = abx * abx + aby * aby + abz * abz;

  const std::size_t herm = sp.herm_size();
  const int hd = sp.hd;

  for (int pa = 0; pa < sh1.nprim(); ++pa) {
    for (int pb = 0; pb < sh2.nprim(); ++pb) {
      const double a = sh1.exps[static_cast<std::size_t>(pa)];
      const double b = sh2.exps[static_cast<std::size_t>(pb)];
      const double coef = sh1.coefs[static_cast<std::size_t>(pa)] *
                          sh2.coefs[static_cast<std::size_t>(pb)];
      const double mu = a * b / (a + b);
      // Gaussian product prefactor bounds every Hermite coefficient.
      if (std::abs(coef) * std::exp(-mu * ab2) < prim_cutoff) continue;

      PrimPairData pp;
      pp.a = a;
      pp.b = b;
      pp.p = a + b;
      pp.coef = coef;
      for (int d = 0; d < 3; ++d) {
        pp.P[d] = (a * sh1.center[d] + b * sh2.center[d]) / (a + b);
      }

      const ETable ex(sh1.l, sh2.l, a, b, abx);
      const ETable ey(sh1.l, sh2.l, a, b, aby);
      const ETable ez(sh1.l, sh2.l, a, b, abz);

      pp.hermite.assign(static_cast<std::size_t>(sp.ncomp()) * herm, 0.0);
      for (std::size_t c1 = 0; c1 < comps1.size(); ++c1) {
        const auto [ix, iy, iz] = comps1[c1];
        for (std::size_t c2 = 0; c2 < comps2.size(); ++c2) {
          const auto [jx, jy, jz] = comps2[c2];
          const double cf = coef * norm1[c1] * norm2[c2];
          double* h =
              pp.hermite.data() + (c1 * comps2.size() + c2) * herm;
          for (int t = 0; t <= ix + jx; ++t) {
            const double ext = ex(ix, jx, t);
            if (ext == 0.0) continue;
            for (int u = 0; u <= iy + jy; ++u) {
              const double eyu = ey(iy, jy, u);
              if (eyu == 0.0) continue;
              const double exy = ext * eyu;
              for (int v = 0; v <= iz + jz; ++v) {
                h[(t * hd + u) * hd + v] = cf * exy * ez(iz, jz, v);
              }
            }
          }
        }
      }
      for (const double h : pp.hermite) {
        pp.hmax = std::max(pp.hmax, std::abs(h));
      }
      // Compact triangle copy (bitwise: values are copied, not
      // recomputed), in the kernel's lexicographic (t, u, v) order.
      const int lsum = sh1.l + sh2.l;
      pp.hermite_tri.resize(static_cast<std::size_t>(sp.ncomp()) *
                            static_cast<std::size_t>(hermite_tri_size(lsum)));
      double* tri = pp.hermite_tri.data();
      for (int c = 0; c < sp.ncomp(); ++c) {
        const double* h = pp.hermite.data() +
                          static_cast<std::size_t>(c) * herm;
        for (int t = 0; t <= lsum; ++t) {
          for (int u = 0; u <= lsum - t; ++u) {
            for (int v = 0; v <= lsum - t - u; ++v) {
              *tri++ = h[(t * hd + u) * hd + v];
            }
          }
        }
      }
      sp.prims.push_back(std::move(pp));
    }
  }
  return sp;
}

ShellPairList::ShellPairList(const basis::BasisSet& bs, double prim_cutoff) {
  const std::size_t n = bs.nshells();
  pairs_.reserve(n * (n + 1) / 2);
  for (std::size_t s1 = 0; s1 < n; ++s1) {
    for (std::size_t s2 = 0; s2 <= s1; ++s2) {
      ShellPairData sp = make_shell_pair(bs.shell(s1), bs.shell(s2),
                                         prim_cutoff);
      sp.s1 = s1;
      sp.s2 = s2;
      pairs_.push_back(std::move(sp));
    }
  }
}

const ShellPairData& ShellPairList::pair(std::size_t s1,
                                         std::size_t s2) const {
  MC_CHECK(s1 >= s2, "shell pair requires s1 >= s2");
  return pairs_[s1 * (s1 + 1) / 2 + s2];
}

}  // namespace mc::ints
