#include "ints/eri.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

namespace {

// MD Coulomb kernel normalization 2*pi^2.5, hoisted out of the primitive
// pair loops (it used to be recomputed via std::pow per ket primitive).
const double kTwoPiToFiveHalves = 2.0 * std::pow(kPi, 2.5);

// Primitive-level prescreen: a primitive pair's contribution to any batch
// element is bounded (up to the Boys/Hermite recursion factors) by
// pref * max|H_bra| * max|H_ket|. The recursion can amplify by a few
// orders for high L, so the cutoff sits ~9 orders below the loosest
// Schwarz threshold in use (1e-10); dropped terms are far beneath both
// the screening error budget and double rounding of accumulated batches.
constexpr double kPrimPairCutoff = 1e-19;

}  // namespace

EriEngine::EriEngine(const basis::BasisSet& bs) : bs_(&bs), pairs_(bs) {}

std::size_t EriEngine::batch_size(std::size_t si, std::size_t sj,
                                  std::size_t sk, std::size_t sl) const {
  return static_cast<std::size_t>(bs_->shell(si).nfunc()) *
         bs_->shell(sj).nfunc() * bs_->shell(sk).nfunc() *
         bs_->shell(sl).nfunc();
}

double EriEngine::quartet_cost_weight(std::size_t si, std::size_t sj,
                                      std::size_t sk, std::size_t sl) const {
  const auto& bra = pairs_.pair(std::max(si, sj), std::min(si, sj));
  const auto& ket = pairs_.pair(std::max(sk, sl), std::min(sk, sl));
  return static_cast<double>(bra.prims.size()) * ket.prims.size() *
         bra.ncomp() * ket.ncomp();
}

void compute_eri_canonical(const ShellPairData& bra,
                           const ShellPairData& ket, double* out) {
  const int ncomp_ab = bra.ncomp();
  const int ncomp_cd = ket.ncomp();
  const std::size_t herm_ab = bra.herm_size();
  const std::size_t herm_cd = ket.herm_size();
  const int hab = bra.hd;
  const int hcd = ket.hd;
  const int ltot = (bra.l1 + bra.l2) + (ket.l1 + ket.l2);
  const int hr = ltot + 1;

  const std::size_t nout =
      static_cast<std::size_t>(ncomp_ab) * static_cast<std::size_t>(ncomp_cd);
  for (std::size_t i = 0; i < nout; ++i) out[i] = 0.0;

  // Per-thread scratch: G[cd][t,u,v] over the *bra* Hermite range, and a
  // reused Hermite Coulomb table (no allocations in the quartet loop).
  thread_local std::vector<double> g;
  thread_local RTable r;
  const std::size_t gsize = static_cast<std::size_t>(ncomp_cd) * herm_ab;
  ensure_batch_size(g, gsize);

  for (const PrimPairData& bp : bra.prims) {
    std::fill_n(g.data(), gsize, 0.0);

    for (const PrimPairData& kp : ket.prims) {
      const double p = bp.p;
      const double q = kp.p;
      // Contraction coefficients live in the Hermite tables; the remaining
      // prefactor is the MD Coulomb kernel normalization.
      const double pref = kTwoPiToFiveHalves / (p * q * std::sqrt(p + q));
      // Primitive-pair prescreen on the combined Hermite weight.
      if (pref * bp.hmax * kp.hmax < kPrimPairCutoff) continue;
      const double alpha = p * q / (p + q);
      const double pq[3] = {bp.P[0] - kp.P[0], bp.P[1] - kp.P[1],
                            bp.P[2] - kp.P[2]};
      r.build(ltot, alpha, pq);

      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* hk = kp.hermite.data() +
                           static_cast<std::size_t>(cd) * herm_cd;
        double* gc = g.data() + static_cast<std::size_t>(cd) * herm_ab;
        for (int tau = 0; tau < hcd; ++tau) {
          for (int nu = 0; nu < hcd; ++nu) {
            for (int phi = 0; phi < hcd; ++phi) {
              const double hval = hk[(tau * hcd + nu) * hcd + phi];
              if (hval == 0.0) continue;
              const double w =
                  pref * (((tau + nu + phi) & 1) ? -hval : hval);
              for (int t = 0; t < hab; ++t) {
                const int rt = t + tau;
                if (rt >= hr) break;
                for (int u = 0; u < hab; ++u) {
                  const int ru = u + nu;
                  if (ru >= hr) break;
                  double* grow = gc + (t * hab + u) * hab;
                  for (int v = 0; v < hab; ++v) {
                    const int rv = v + phi;
                    if (rv >= hr) break;
                    grow[v] += w * r(rt, ru, rv);
                  }
                }
              }
            }
          }
        }
      }
    }

    // Contract the bra Hermite coefficients against G.
    for (int ab = 0; ab < ncomp_ab; ++ab) {
      const double* hb =
          bp.hermite.data() + static_cast<std::size_t>(ab) * herm_ab;
      double* orow = out + static_cast<std::size_t>(ab) * ncomp_cd;
      for (int cd = 0; cd < ncomp_cd; ++cd) {
        const double* gc = g.data() + static_cast<std::size_t>(cd) * herm_ab;
        double s = 0.0;
        for (std::size_t h = 0; h < herm_ab; ++h) s += hb[h] * gc[h];
        orow[cd] += s;
      }
    }
  }
}

void EriEngine::compute(std::size_t si, std::size_t sj, std::size_t sk,
                        std::size_t sl, double* out) const {
  const bool swap_ij = si < sj;
  const bool swap_kl = sk < sl;
  const ShellPairData& bra =
      pairs_.pair(std::max(si, sj), std::min(si, sj));
  const ShellPairData& ket =
      pairs_.pair(std::max(sk, sl), std::min(sk, sl));

  const int ni = bs_->shell(si).nfunc();
  const int nj = bs_->shell(sj).nfunc();
  const int nk = bs_->shell(sk).nfunc();
  const int nl = bs_->shell(sl).nfunc();

  if (!swap_ij && !swap_kl) {
    compute_eri_canonical(bra, ket, out);
    return;
  }

  thread_local std::vector<double> tmp;
  ensure_batch_size(tmp, static_cast<std::size_t>(ni) * nj * nk * nl);
  compute_eri_canonical(bra, ket, tmp.data());

  // tmp is laid out in canonical orientation [b1][b2][k1][k2] where
  // b1 = max(si,sj) etc.; permute into the caller's [i][j][k][l].
  const int nb1 = swap_ij ? nj : ni;
  const int nb2 = swap_ij ? ni : nj;
  const int nk1 = swap_kl ? nl : nk;
  const int nk2 = swap_kl ? nk : nl;
  for (int a = 0; a < nb1; ++a) {
    for (int b = 0; b < nb2; ++b) {
      const int ii = swap_ij ? b : a;
      const int jj = swap_ij ? a : b;
      for (int c = 0; c < nk1; ++c) {
        for (int d = 0; d < nk2; ++d) {
          const int kk = swap_kl ? d : c;
          const int ll = swap_kl ? c : d;
          out[((static_cast<std::size_t>(ii) * nj + jj) * nk + kk) * nl + ll] =
              tmp[((static_cast<std::size_t>(a) * nb2 + b) * nk1 + c) * nk2 +
                  d];
        }
      }
    }
  }
}

}  // namespace mc::ints
