#include "ints/eri.hpp"

#include <algorithm>
#include <vector>

#include "ints/eri_kernel.hpp"
#include "ints/hermite.hpp"

namespace mc::ints {

EriEngine::EriEngine(const basis::BasisSet& bs) : bs_(&bs), pairs_(bs) {}

std::size_t EriEngine::batch_size(std::size_t si, std::size_t sj,
                                  std::size_t sk, std::size_t sl) const {
  return static_cast<std::size_t>(bs_->shell(si).nfunc()) *
         bs_->shell(sj).nfunc() * bs_->shell(sk).nfunc() *
         bs_->shell(sl).nfunc();
}

double EriEngine::quartet_cost_weight(std::size_t si, std::size_t sj,
                                      std::size_t sk, std::size_t sl) const {
  const auto& bra = pairs_.pair(std::max(si, sj), std::min(si, sj));
  const auto& ket = pairs_.pair(std::max(sk, sl), std::min(sk, sl));
  return static_cast<double>(bra.prims.size()) *
         static_cast<double>(ket.prims.size()) * bra.ncomp() * ket.ncomp();
}

void compute_eri_canonical(const ShellPairData& bra,
                           const ShellPairData& ket, double* out) {
  // Per-thread scratch: G accumulator, gathered R matrix, and a reused
  // Hermite Coulomb table (no allocations in the quartet loop).
  thread_local std::vector<double> g;
  thread_local std::vector<double> rmat;
  thread_local RTable r;
  detail::ScalarPrimSource src;
  src.ltot = (bra.l1 + bra.l2) + (ket.l1 + ket.l2);
  detail::eri_quartet_kernel(bra, ket, src, g, rmat, r, out);
}

void EriEngine::compute(std::size_t si, std::size_t sj, std::size_t sk,
                        std::size_t sl, double* out) const {
  const bool swap_ij = si < sj;
  const bool swap_kl = sk < sl;
  const ShellPairData& bra =
      pairs_.pair(std::max(si, sj), std::min(si, sj));
  const ShellPairData& ket =
      pairs_.pair(std::max(sk, sl), std::min(sk, sl));

  if (!swap_ij && !swap_kl) {
    compute_eri_canonical(bra, ket, out);
    return;
  }

  const int ni = bs_->shell(si).nfunc();
  const int nj = bs_->shell(sj).nfunc();
  const int nk = bs_->shell(sk).nfunc();
  const int nl = bs_->shell(sl).nfunc();

  thread_local std::vector<double> tmp;
  ensure_batch_size(tmp, static_cast<std::size_t>(ni) * nj * nk * nl);
  compute_eri_canonical(bra, ket, tmp.data());
  detail::permute_to_caller(tmp.data(), swap_ij, swap_kl, ni, nj, nk, nl,
                            out);
}

}  // namespace mc::ints
