#pragma once
// Cauchy-Schwarz integral screening (paper section 4.1):
//   |(ij|kl)| <= Q_ij * Q_kl,  Q_ij = sqrt(max over components (ij|ij)).
// Screening is what makes the ERI tensor sparse for extended systems and is
// applied in all three of the paper's algorithms; the shared-Fock algorithm
// additionally prescreens whole (ij) MPI tasks (Algorithm 3 line 13).
//
// Two extensions beyond the static bound (DESIGN.md section 9):
//  * Density-weighted bounds: in direct SCF the Fock matrix is built from
//    the density *difference*, so a quartet only matters if
//    Q_ij * Q_kl * max|D block| clears the threshold -- the bound tightens
//    as SCF converges and kills an increasing fraction of quartets.
//  * Precomputed screened pair lists: the surviving (i,j) bra pairs are
//    compacted once per geometry and sorted largest-Q-first, replacing the
//    sqrt-decode of flat pair indices and the full N(N+1)/2 DLB range in
//    the Fock builders with iteration over a shorter, better-ordered list.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ints/eri.hpp"

namespace mc::ints {

/// One surviving (i, j) bra shell pair of the compacted screening lists
/// (i >= j). `canonical` is the flat canonical pair index i*(i+1)/2 + j the
/// merged-index loops of Algorithm 3 bound their kl sweep with.
struct ScreenedPair {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t canonical = 0;
  double q = 0.0;  ///< Schwarz bound Q_ij
};

class Screening {
 public:
  /// Computes the shell-pair Schwarz bounds Q with the given engine.
  /// `threshold`: quartets with Q_ij*Q_kl below it are skipped (GAMESS
  /// default integral cutoff is 1e-9; we default to 1e-10).
  /// The O(nshells^2) diagonal (ij|ij) loop is OpenMP-parallel.
  Screening(const EriEngine& eri, double threshold = 1e-10);

  [[nodiscard]] double q(std::size_t s1, std::size_t s2) const {
    return q_[s1 * nshells_ + s2];
  }
  [[nodiscard]] double qmax() const { return qmax_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] std::size_t nshells() const { return nshells_; }

  /// True if the quartet survives the static Schwarz bound.
  [[nodiscard]] bool keep(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) const {
    return q(i, j) * q(k, l) >= threshold_;
  }
  /// Density-weighted bound (direct-SCF delta builds): the quartet's
  /// largest possible Fock contribution is Q_ij * Q_kl * Dmax, where Dmax
  /// bounds the density blocks the quartet contracts against (see
  /// scf::FockContext::quartet_dmax). `scale` tightens the threshold for
  /// incremental builds so skipped contributions stay below the
  /// accumulation error budget.
  [[nodiscard]] bool keep(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l, double dmax,
                          double scale = 1.0) const {
    return q(i, j) * q(k, l) * dmax >= threshold_ * scale;
  }
  /// True if the (ij) pair can survive with *any* partner pair
  /// (the shared-Fock algorithm's ij prescreen).
  [[nodiscard]] bool keep_pair(std::size_t i, std::size_t j) const {
    return q(i, j) * qmax_ >= threshold_;
  }
  /// Density-weighted pair prescreen: safe because Q_kl <= qmax and every
  /// density block any partner quartet touches is bounded by `dmax`.
  [[nodiscard]] bool keep_pair(std::size_t i, std::size_t j, double dmax,
                               double scale = 1.0) const {
    return q(i, j) * qmax_ * dmax >= threshold_ * scale;
  }

  /// Statically surviving (i,j) pairs, Schwarz-descending (ties broken by
  /// canonical index so every rank builds the identical list -- the DLB
  /// counter indexes into it). Largest-first order front-loads the heavy
  /// tasks, shrinking the dynamic-load-balance tail.
  [[nodiscard]] const std::vector<ScreenedPair>& sorted_pairs() const {
    return sorted_pairs_;
  }
  /// The same pairs grouped by bra shell i -- groups in descending
  /// estimated-work order, pairs within a group Schwarz-descending. The
  /// shared-Fock builder iterates this variant so its lazy FI flush (which
  /// fires on i changes) keeps flushing once per shell, not once per pair.
  [[nodiscard]] const std::vector<ScreenedPair>& bra_grouped_pairs() const {
    return bra_grouped_pairs_;
  }
  /// Bra shells with at least one surviving pair, in descending
  /// estimated-quartet-work order (the private-Fock builder's MPI-level
  /// task list).
  [[nodiscard]] const std::vector<std::size_t>& sorted_bra_shells() const {
    return sorted_bra_shells_;
  }
  /// Precomputed canonical-pair decode: shells (i, j) of flat pair index p
  /// (i >= j). Replaces the per-iteration sqrt decode of unpack_pair in
  /// the hot kl loops.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pair_shells(
      std::size_t p) const {
    return {pair_i_[p], pair_j_[p]};
  }

  /// All Q_ij for unique pairs (i >= j), e.g. for workload statistics.
  [[nodiscard]] std::vector<double> unique_pair_bounds() const;

  /// Exact count of canonical quartets surviving screening (the loop
  /// structure of Algorithm 1). O(Nshells^4 / 8) -- test-scale systems only.
  [[nodiscard]] std::size_t count_surviving_quartets() const;
  /// Total canonical quartets without screening.
  [[nodiscard]] std::size_t total_quartets() const;

 private:
  void build_pair_lists();

  std::size_t nshells_ = 0;
  double threshold_ = 0.0;
  double qmax_ = 0.0;
  std::vector<double> q_;  // full nshells x nshells, symmetric
  std::vector<std::uint32_t> pair_i_, pair_j_;  // canonical decode table
  std::vector<ScreenedPair> sorted_pairs_;
  std::vector<ScreenedPair> bra_grouped_pairs_;
  std::vector<std::size_t> sorted_bra_shells_;
};

}  // namespace mc::ints
