#pragma once
// Cauchy-Schwarz integral screening (paper section 4.1):
//   |(ij|kl)| <= Q_ij * Q_kl,  Q_ij = sqrt(max over components (ij|ij)).
// Screening is what makes the ERI tensor sparse for extended systems and is
// applied in all three of the paper's algorithms; the shared-Fock algorithm
// additionally prescreens whole (ij) MPI tasks (Algorithm 3 line 13).

#include <cstddef>
#include <vector>

#include "ints/eri.hpp"

namespace mc::ints {

class Screening {
 public:
  /// Computes the shell-pair Schwarz bounds Q with the given engine.
  /// `threshold`: quartets with Q_ij*Q_kl below it are skipped (GAMESS
  /// default integral cutoff is 1e-9; we default to 1e-10).
  Screening(const EriEngine& eri, double threshold = 1e-10);

  [[nodiscard]] double q(std::size_t s1, std::size_t s2) const {
    return q_[s1 * nshells_ + s2];
  }
  [[nodiscard]] double qmax() const { return qmax_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] std::size_t nshells() const { return nshells_; }

  /// True if the quartet survives screening.
  [[nodiscard]] bool keep(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) const {
    return q(i, j) * q(k, l) >= threshold_;
  }
  /// True if the (ij) pair can survive with *any* partner pair
  /// (the shared-Fock algorithm's ij prescreen).
  [[nodiscard]] bool keep_pair(std::size_t i, std::size_t j) const {
    return q(i, j) * qmax_ >= threshold_;
  }

  /// All Q_ij for unique pairs (i >= j), e.g. for workload statistics.
  [[nodiscard]] std::vector<double> unique_pair_bounds() const;

  /// Exact count of canonical quartets surviving screening (the loop
  /// structure of Algorithm 1). O(Nshells^4 / 8) -- test-scale systems only.
  [[nodiscard]] std::size_t count_surviving_quartets() const;
  /// Total canonical quartets without screening.
  [[nodiscard]] std::size_t total_quartets() const;

 private:
  std::size_t nshells_ = 0;
  double threshold_ = 0.0;
  double qmax_ = 0.0;
  std::vector<double> q_;  // full nshells x nshells, symmetric
};

}  // namespace mc::ints
