# Empty dependencies file for memory_footprint.
# This may be replaced when dependencies are built.
