# Empty compiler generated dependencies file for graphene_hf.
# This may be replaced when dependencies are built.
