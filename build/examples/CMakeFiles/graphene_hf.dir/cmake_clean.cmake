file(REMOVE_RECURSE
  "CMakeFiles/graphene_hf.dir/graphene_hf.cpp.o"
  "CMakeFiles/graphene_hf.dir/graphene_hf.cpp.o.d"
  "graphene_hf"
  "graphene_hf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_hf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
