file(REMOVE_RECURSE
  "CMakeFiles/mchf.dir/mchf.cpp.o"
  "CMakeFiles/mchf.dir/mchf.cpp.o.d"
  "mchf"
  "mchf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mchf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
