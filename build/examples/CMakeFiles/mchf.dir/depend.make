# Empty dependencies file for mchf.
# This may be replaced when dependencies are built.
