file(REMOVE_RECURSE
  "CMakeFiles/bench_dlb_ablation.dir/bench_dlb_ablation.cpp.o"
  "CMakeFiles/bench_dlb_ablation.dir/bench_dlb_ablation.cpp.o.d"
  "bench_dlb_ablation"
  "bench_dlb_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dlb_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
