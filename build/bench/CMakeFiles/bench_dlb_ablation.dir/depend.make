# Empty dependencies file for bench_dlb_ablation.
# This may be replaced when dependencies are built.
