# Empty dependencies file for bench_fig4_singlenode.
# This may be replaced when dependencies are built.
