# Empty dependencies file for bench_fig5_modes.
# This may be replaced when dependencies are built.
