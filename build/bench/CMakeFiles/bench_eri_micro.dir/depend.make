# Empty dependencies file for bench_eri_micro.
# This may be replaced when dependencies are built.
