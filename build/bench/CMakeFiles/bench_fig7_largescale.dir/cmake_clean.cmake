file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_largescale.dir/bench_fig7_largescale.cpp.o"
  "CMakeFiles/bench_fig7_largescale.dir/bench_fig7_largescale.cpp.o.d"
  "bench_fig7_largescale"
  "bench_fig7_largescale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_largescale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
