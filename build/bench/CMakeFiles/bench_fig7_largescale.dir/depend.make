# Empty dependencies file for bench_fig7_largescale.
# This may be replaced when dependencies are built.
