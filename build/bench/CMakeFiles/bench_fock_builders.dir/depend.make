# Empty dependencies file for bench_fock_builders.
# This may be replaced when dependencies are built.
