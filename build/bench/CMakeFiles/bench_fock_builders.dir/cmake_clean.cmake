file(REMOVE_RECURSE
  "CMakeFiles/bench_fock_builders.dir/bench_fock_builders.cpp.o"
  "CMakeFiles/bench_fock_builders.dir/bench_fock_builders.cpp.o.d"
  "bench_fock_builders"
  "bench_fock_builders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fock_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
