file(REMOVE_RECURSE
  "CMakeFiles/test_knlsim.dir/test_knlsim.cpp.o"
  "CMakeFiles/test_knlsim.dir/test_knlsim.cpp.o.d"
  "test_knlsim"
  "test_knlsim.pdb"
  "test_knlsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
