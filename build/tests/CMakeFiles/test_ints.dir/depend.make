# Empty dependencies file for test_ints.
# This may be replaced when dependencies are built.
