file(REMOVE_RECURSE
  "CMakeFiles/test_ints.dir/test_ints.cpp.o"
  "CMakeFiles/test_ints.dir/test_ints.cpp.o.d"
  "test_ints"
  "test_ints.pdb"
  "test_ints[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
