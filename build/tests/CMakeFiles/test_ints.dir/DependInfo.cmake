
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ints.cpp" "tests/CMakeFiles/test_ints.dir/test_ints.cpp.o" "gcc" "tests/CMakeFiles/test_ints.dir/test_ints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/mc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/mc_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/mc_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/ints/CMakeFiles/mc_ints.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/mc_par.dir/DependInfo.cmake"
  "/root/repo/build/src/scf/CMakeFiles/mc_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/knlsim/CMakeFiles/mc_knlsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
