# Empty compiler generated dependencies file for test_posthf.
# This may be replaced when dependencies are built.
