file(REMOVE_RECURSE
  "CMakeFiles/test_posthf.dir/test_posthf.cpp.o"
  "CMakeFiles/test_posthf.dir/test_posthf.cpp.o.d"
  "test_posthf"
  "test_posthf.pdb"
  "test_posthf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posthf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
