# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_chem[1]_include.cmake")
include("/root/repo/build/tests/test_basis[1]_include.cmake")
include("/root/repo/build/tests/test_ints[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_scf[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_knlsim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_posthf[1]_include.cmake")
