
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scf/diis.cpp" "src/scf/CMakeFiles/mc_scf.dir/diis.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/diis.cpp.o.d"
  "/root/repo/src/scf/fock_builder.cpp" "src/scf/CMakeFiles/mc_scf.dir/fock_builder.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/fock_builder.cpp.o.d"
  "/root/repo/src/scf/mp2.cpp" "src/scf/CMakeFiles/mc_scf.dir/mp2.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/mp2.cpp.o.d"
  "/root/repo/src/scf/properties.cpp" "src/scf/CMakeFiles/mc_scf.dir/properties.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/properties.cpp.o.d"
  "/root/repo/src/scf/scf_driver.cpp" "src/scf/CMakeFiles/mc_scf.dir/scf_driver.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/scf_driver.cpp.o.d"
  "/root/repo/src/scf/serial_fock.cpp" "src/scf/CMakeFiles/mc_scf.dir/serial_fock.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/serial_fock.cpp.o.d"
  "/root/repo/src/scf/stored_integrals.cpp" "src/scf/CMakeFiles/mc_scf.dir/stored_integrals.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/stored_integrals.cpp.o.d"
  "/root/repo/src/scf/uhf.cpp" "src/scf/CMakeFiles/mc_scf.dir/uhf.cpp.o" "gcc" "src/scf/CMakeFiles/mc_scf.dir/uhf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/mc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/mc_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/mc_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/ints/CMakeFiles/mc_ints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
