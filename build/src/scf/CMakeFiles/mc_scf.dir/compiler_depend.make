# Empty compiler generated dependencies file for mc_scf.
# This may be replaced when dependencies are built.
