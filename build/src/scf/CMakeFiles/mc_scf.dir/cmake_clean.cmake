file(REMOVE_RECURSE
  "CMakeFiles/mc_scf.dir/diis.cpp.o"
  "CMakeFiles/mc_scf.dir/diis.cpp.o.d"
  "CMakeFiles/mc_scf.dir/fock_builder.cpp.o"
  "CMakeFiles/mc_scf.dir/fock_builder.cpp.o.d"
  "CMakeFiles/mc_scf.dir/mp2.cpp.o"
  "CMakeFiles/mc_scf.dir/mp2.cpp.o.d"
  "CMakeFiles/mc_scf.dir/properties.cpp.o"
  "CMakeFiles/mc_scf.dir/properties.cpp.o.d"
  "CMakeFiles/mc_scf.dir/scf_driver.cpp.o"
  "CMakeFiles/mc_scf.dir/scf_driver.cpp.o.d"
  "CMakeFiles/mc_scf.dir/serial_fock.cpp.o"
  "CMakeFiles/mc_scf.dir/serial_fock.cpp.o.d"
  "CMakeFiles/mc_scf.dir/stored_integrals.cpp.o"
  "CMakeFiles/mc_scf.dir/stored_integrals.cpp.o.d"
  "CMakeFiles/mc_scf.dir/uhf.cpp.o"
  "CMakeFiles/mc_scf.dir/uhf.cpp.o.d"
  "libmc_scf.a"
  "libmc_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
