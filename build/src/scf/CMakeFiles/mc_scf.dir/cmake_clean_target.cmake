file(REMOVE_RECURSE
  "libmc_scf.a"
)
