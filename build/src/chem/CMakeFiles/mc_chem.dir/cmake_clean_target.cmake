file(REMOVE_RECURSE
  "libmc_chem.a"
)
