
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/builders.cpp" "src/chem/CMakeFiles/mc_chem.dir/builders.cpp.o" "gcc" "src/chem/CMakeFiles/mc_chem.dir/builders.cpp.o.d"
  "/root/repo/src/chem/element.cpp" "src/chem/CMakeFiles/mc_chem.dir/element.cpp.o" "gcc" "src/chem/CMakeFiles/mc_chem.dir/element.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/chem/CMakeFiles/mc_chem.dir/molecule.cpp.o" "gcc" "src/chem/CMakeFiles/mc_chem.dir/molecule.cpp.o.d"
  "/root/repo/src/chem/xyz_io.cpp" "src/chem/CMakeFiles/mc_chem.dir/xyz_io.cpp.o" "gcc" "src/chem/CMakeFiles/mc_chem.dir/xyz_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
