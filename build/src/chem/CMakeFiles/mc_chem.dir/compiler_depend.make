# Empty compiler generated dependencies file for mc_chem.
# This may be replaced when dependencies are built.
