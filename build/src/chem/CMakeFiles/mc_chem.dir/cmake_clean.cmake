file(REMOVE_RECURSE
  "CMakeFiles/mc_chem.dir/builders.cpp.o"
  "CMakeFiles/mc_chem.dir/builders.cpp.o.d"
  "CMakeFiles/mc_chem.dir/element.cpp.o"
  "CMakeFiles/mc_chem.dir/element.cpp.o.d"
  "CMakeFiles/mc_chem.dir/molecule.cpp.o"
  "CMakeFiles/mc_chem.dir/molecule.cpp.o.d"
  "CMakeFiles/mc_chem.dir/xyz_io.cpp.o"
  "CMakeFiles/mc_chem.dir/xyz_io.cpp.o.d"
  "libmc_chem.a"
  "libmc_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
