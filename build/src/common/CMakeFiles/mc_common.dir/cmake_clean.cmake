file(REMOVE_RECURSE
  "CMakeFiles/mc_common.dir/memory_tracker.cpp.o"
  "CMakeFiles/mc_common.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/mc_common.dir/table.cpp.o"
  "CMakeFiles/mc_common.dir/table.cpp.o.d"
  "libmc_common.a"
  "libmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
