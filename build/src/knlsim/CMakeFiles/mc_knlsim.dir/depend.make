# Empty dependencies file for mc_knlsim.
# This may be replaced when dependencies are built.
