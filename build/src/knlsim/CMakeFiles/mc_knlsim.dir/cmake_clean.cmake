file(REMOVE_RECURSE
  "CMakeFiles/mc_knlsim.dir/cost_model.cpp.o"
  "CMakeFiles/mc_knlsim.dir/cost_model.cpp.o.d"
  "CMakeFiles/mc_knlsim.dir/experiments.cpp.o"
  "CMakeFiles/mc_knlsim.dir/experiments.cpp.o.d"
  "CMakeFiles/mc_knlsim.dir/knl_config.cpp.o"
  "CMakeFiles/mc_knlsim.dir/knl_config.cpp.o.d"
  "CMakeFiles/mc_knlsim.dir/simulator.cpp.o"
  "CMakeFiles/mc_knlsim.dir/simulator.cpp.o.d"
  "CMakeFiles/mc_knlsim.dir/workload.cpp.o"
  "CMakeFiles/mc_knlsim.dir/workload.cpp.o.d"
  "libmc_knlsim.a"
  "libmc_knlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_knlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
