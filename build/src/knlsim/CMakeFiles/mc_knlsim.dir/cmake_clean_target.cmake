file(REMOVE_RECURSE
  "libmc_knlsim.a"
)
