file(REMOVE_RECURSE
  "CMakeFiles/mc_core.dir/fock_mpi.cpp.o"
  "CMakeFiles/mc_core.dir/fock_mpi.cpp.o.d"
  "CMakeFiles/mc_core.dir/fock_private.cpp.o"
  "CMakeFiles/mc_core.dir/fock_private.cpp.o.d"
  "CMakeFiles/mc_core.dir/fock_shared.cpp.o"
  "CMakeFiles/mc_core.dir/fock_shared.cpp.o.d"
  "CMakeFiles/mc_core.dir/memory_model.cpp.o"
  "CMakeFiles/mc_core.dir/memory_model.cpp.o.d"
  "CMakeFiles/mc_core.dir/parallel_scf.cpp.o"
  "CMakeFiles/mc_core.dir/parallel_scf.cpp.o.d"
  "libmc_core.a"
  "libmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
