file(REMOVE_RECURSE
  "CMakeFiles/mc_la.dir/blas_lite.cpp.o"
  "CMakeFiles/mc_la.dir/blas_lite.cpp.o.d"
  "CMakeFiles/mc_la.dir/matrix.cpp.o"
  "CMakeFiles/mc_la.dir/matrix.cpp.o.d"
  "CMakeFiles/mc_la.dir/orthogonalizer.cpp.o"
  "CMakeFiles/mc_la.dir/orthogonalizer.cpp.o.d"
  "CMakeFiles/mc_la.dir/packed.cpp.o"
  "CMakeFiles/mc_la.dir/packed.cpp.o.d"
  "CMakeFiles/mc_la.dir/solve.cpp.o"
  "CMakeFiles/mc_la.dir/solve.cpp.o.d"
  "CMakeFiles/mc_la.dir/sym_eig.cpp.o"
  "CMakeFiles/mc_la.dir/sym_eig.cpp.o.d"
  "libmc_la.a"
  "libmc_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
