# Empty compiler generated dependencies file for mc_la.
# This may be replaced when dependencies are built.
