
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/blas_lite.cpp" "src/la/CMakeFiles/mc_la.dir/blas_lite.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/blas_lite.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/la/CMakeFiles/mc_la.dir/matrix.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/matrix.cpp.o.d"
  "/root/repo/src/la/orthogonalizer.cpp" "src/la/CMakeFiles/mc_la.dir/orthogonalizer.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/orthogonalizer.cpp.o.d"
  "/root/repo/src/la/packed.cpp" "src/la/CMakeFiles/mc_la.dir/packed.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/packed.cpp.o.d"
  "/root/repo/src/la/solve.cpp" "src/la/CMakeFiles/mc_la.dir/solve.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/solve.cpp.o.d"
  "/root/repo/src/la/sym_eig.cpp" "src/la/CMakeFiles/mc_la.dir/sym_eig.cpp.o" "gcc" "src/la/CMakeFiles/mc_la.dir/sym_eig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
