file(REMOVE_RECURSE
  "libmc_la.a"
)
