file(REMOVE_RECURSE
  "CMakeFiles/mc_ints.dir/boys.cpp.o"
  "CMakeFiles/mc_ints.dir/boys.cpp.o.d"
  "CMakeFiles/mc_ints.dir/eri.cpp.o"
  "CMakeFiles/mc_ints.dir/eri.cpp.o.d"
  "CMakeFiles/mc_ints.dir/hermite.cpp.o"
  "CMakeFiles/mc_ints.dir/hermite.cpp.o.d"
  "CMakeFiles/mc_ints.dir/multipole.cpp.o"
  "CMakeFiles/mc_ints.dir/multipole.cpp.o.d"
  "CMakeFiles/mc_ints.dir/one_electron.cpp.o"
  "CMakeFiles/mc_ints.dir/one_electron.cpp.o.d"
  "CMakeFiles/mc_ints.dir/screening.cpp.o"
  "CMakeFiles/mc_ints.dir/screening.cpp.o.d"
  "CMakeFiles/mc_ints.dir/shell_pair.cpp.o"
  "CMakeFiles/mc_ints.dir/shell_pair.cpp.o.d"
  "libmc_ints.a"
  "libmc_ints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_ints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
