# Empty dependencies file for mc_ints.
# This may be replaced when dependencies are built.
