
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ints/boys.cpp" "src/ints/CMakeFiles/mc_ints.dir/boys.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/boys.cpp.o.d"
  "/root/repo/src/ints/eri.cpp" "src/ints/CMakeFiles/mc_ints.dir/eri.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/eri.cpp.o.d"
  "/root/repo/src/ints/hermite.cpp" "src/ints/CMakeFiles/mc_ints.dir/hermite.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/hermite.cpp.o.d"
  "/root/repo/src/ints/multipole.cpp" "src/ints/CMakeFiles/mc_ints.dir/multipole.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/multipole.cpp.o.d"
  "/root/repo/src/ints/one_electron.cpp" "src/ints/CMakeFiles/mc_ints.dir/one_electron.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/one_electron.cpp.o.d"
  "/root/repo/src/ints/screening.cpp" "src/ints/CMakeFiles/mc_ints.dir/screening.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/screening.cpp.o.d"
  "/root/repo/src/ints/shell_pair.cpp" "src/ints/CMakeFiles/mc_ints.dir/shell_pair.cpp.o" "gcc" "src/ints/CMakeFiles/mc_ints.dir/shell_pair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/mc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/mc_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/mc_basis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
