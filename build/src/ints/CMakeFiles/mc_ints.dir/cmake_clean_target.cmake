file(REMOVE_RECURSE
  "libmc_ints.a"
)
