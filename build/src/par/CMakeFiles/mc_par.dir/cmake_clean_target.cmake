file(REMOVE_RECURSE
  "libmc_par.a"
)
