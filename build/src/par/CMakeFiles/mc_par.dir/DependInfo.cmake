
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/ddi.cpp" "src/par/CMakeFiles/mc_par.dir/ddi.cpp.o" "gcc" "src/par/CMakeFiles/mc_par.dir/ddi.cpp.o.d"
  "/root/repo/src/par/runtime.cpp" "src/par/CMakeFiles/mc_par.dir/runtime.cpp.o" "gcc" "src/par/CMakeFiles/mc_par.dir/runtime.cpp.o.d"
  "/root/repo/src/par/work_stealing.cpp" "src/par/CMakeFiles/mc_par.dir/work_stealing.cpp.o" "gcc" "src/par/CMakeFiles/mc_par.dir/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/mc_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
