file(REMOVE_RECURSE
  "CMakeFiles/mc_par.dir/ddi.cpp.o"
  "CMakeFiles/mc_par.dir/ddi.cpp.o.d"
  "CMakeFiles/mc_par.dir/runtime.cpp.o"
  "CMakeFiles/mc_par.dir/runtime.cpp.o.d"
  "CMakeFiles/mc_par.dir/work_stealing.cpp.o"
  "CMakeFiles/mc_par.dir/work_stealing.cpp.o.d"
  "libmc_par.a"
  "libmc_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
