# Empty dependencies file for mc_par.
# This may be replaced when dependencies are built.
