file(REMOVE_RECURSE
  "CMakeFiles/mc_basis.dir/basis_library.cpp.o"
  "CMakeFiles/mc_basis.dir/basis_library.cpp.o.d"
  "CMakeFiles/mc_basis.dir/basis_set.cpp.o"
  "CMakeFiles/mc_basis.dir/basis_set.cpp.o.d"
  "CMakeFiles/mc_basis.dir/shell.cpp.o"
  "CMakeFiles/mc_basis.dir/shell.cpp.o.d"
  "libmc_basis.a"
  "libmc_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
