file(REMOVE_RECURSE
  "libmc_basis.a"
)
