
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/basis/basis_library.cpp" "src/basis/CMakeFiles/mc_basis.dir/basis_library.cpp.o" "gcc" "src/basis/CMakeFiles/mc_basis.dir/basis_library.cpp.o.d"
  "/root/repo/src/basis/basis_set.cpp" "src/basis/CMakeFiles/mc_basis.dir/basis_set.cpp.o" "gcc" "src/basis/CMakeFiles/mc_basis.dir/basis_set.cpp.o.d"
  "/root/repo/src/basis/shell.cpp" "src/basis/CMakeFiles/mc_basis.dir/shell.cpp.o" "gcc" "src/basis/CMakeFiles/mc_basis.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/mc_chem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
