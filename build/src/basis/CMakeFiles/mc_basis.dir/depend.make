# Empty dependencies file for mc_basis.
# This may be replaced when dependencies are built.
