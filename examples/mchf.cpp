// mchf -- the command-line driver (this project's equivalent of the
// gamess.00.x binary from the paper's artifact appendix).
//
//   mchf [options]
//     --xyz FILE          geometry from an XYZ file (Angstrom)
//     --molecule NAME     built-in: water methane benzene h2 graphene:N
//     --basis NAME        STO-3G | 6-31G | 6-31G(d) | 6-31G(d,p)
//     --method M          rhf | uhf | mp2          (default rhf)
//     --algorithm A       serial | mpi | private | shared | dist  (default serial)
//     --ranks R           minimpi ranks            (default 1)
//     --threads T         OpenMP threads per rank  (default 1)
//     --charge Q          net charge               (default 0)
//     --multiplicity M    2S+1 for UHF             (default 1)
//     --guess-mix         break alpha/beta symmetry in the UHF guess
//     --profile PATH      write PATH.metrics.jsonl (one JSON record per
//                         SCF iteration) and PATH.trace.json (chrome
//                         trace; open in chrome://tracing or Perfetto)
//
// Examples:
//   mchf --molecule water --basis 6-31G(d) --method mp2
//   mchf --molecule graphene:8 --algorithm shared --ranks 2 --threads 2
//   mchf --xyz caffeine.xyz --basis STO-3G

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "chem/element.hpp"
#include "chem/xyz_io.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/parallel_scf.hpp"
#include "ints/one_electron.hpp"
#include "scf/mp2.hpp"
#include "scf/properties.hpp"
#include "scf/serial_fock.hpp"
#include "scf/stored_integrals.hpp"
#include "scf/uhf.hpp"

using namespace mc;

namespace {

struct Args {
  std::string xyz;
  std::string molecule = "water";
  std::string basis = "STO-3G";
  std::string method = "rhf";
  std::string algorithm = "serial";
  int ranks = 1;
  int threads = 1;
  int charge = 0;
  int multiplicity = 1;
  bool guess_mix = false;
  std::string profile;
};

[[noreturn]] void usage_and_exit() {
  std::printf(
      "usage: mchf [--xyz FILE | --molecule NAME] [--basis B] "
      "[--method rhf|uhf|mp2]\n"
      "            [--algorithm serial|mpi|private|shared|dist] [--ranks R] "
      "[--threads T]\n"
      "            [--charge Q] [--multiplicity M] [--guess-mix]\n"
      "            [--profile PATH]\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (flag == "--xyz") a.xyz = value();
    else if (flag == "--molecule") a.molecule = value();
    else if (flag == "--basis") a.basis = value();
    else if (flag == "--method") a.method = value();
    else if (flag == "--algorithm") a.algorithm = value();
    else if (flag == "--ranks") a.ranks = std::atoi(value().c_str());
    else if (flag == "--threads") a.threads = std::atoi(value().c_str());
    else if (flag == "--charge") a.charge = std::atoi(value().c_str());
    else if (flag == "--multiplicity")
      a.multiplicity = std::atoi(value().c_str());
    else if (flag == "--guess-mix") a.guess_mix = true;
    else if (flag == "--profile") a.profile = value();
    else if (flag == "--help" || flag == "-h") usage_and_exit();
    else {
      std::printf("unknown flag: %s\n", flag.c_str());
      usage_and_exit();
    }
  }
  return a;
}

chem::Molecule load_molecule(const Args& a) {
  if (!a.xyz.empty()) return chem::read_xyz_file(a.xyz);
  if (a.molecule == "water") return chem::builders::water();
  if (a.molecule == "methane") return chem::builders::methane();
  if (a.molecule == "benzene") return chem::builders::benzene();
  if (a.molecule == "h2") return chem::builders::h2();
  if (a.molecule.rfind("graphene:", 0) == 0) {
    const std::size_t n =
        std::strtoul(a.molecule.c_str() + 9, nullptr, 10);
    MC_CHECK(n >= 2, "graphene:N needs N >= 2");
    return chem::builders::graphene_flake(n);
  }
  MC_CHECK(false, "unknown molecule: " + a.molecule);
  return {};
}

core::ScfAlgorithm algorithm_of(const std::string& name) {
  if (name == "mpi") return core::ScfAlgorithm::kMpiOnly;
  if (name == "private") return core::ScfAlgorithm::kPrivateFock;
  if (name == "shared") return core::ScfAlgorithm::kSharedFock;
  if (name == "dist") return core::ScfAlgorithm::kDistFock;
  MC_CHECK(false, "unknown algorithm: " + name);
  return core::ScfAlgorithm::kSharedFock;
}

int run(const Args& a) {
  const chem::Molecule mol = load_molecule(a);
  const basis::BasisSet bs = basis::BasisSet::build(mol, a.basis);
  std::printf("mchf: %zu atoms, %d electrons, %zu shells, %zu basis "
              "functions (%s)\n",
              mol.natoms(), mol.nelectrons(a.charge), bs.nshells(), bs.nbf(),
              a.basis.c_str());

  WallTimer wall;
  if (a.method == "uhf") {
    ints::EriEngine eri(bs);
    ints::Screening screen(eri, 1e-10);
    scf::UhfOptions opt;
    opt.charge = a.charge;
    opt.multiplicity = a.multiplicity;
    opt.guess_mix = a.guess_mix;
    const scf::UhfResult r = scf::run_uhf(mol, bs, eri, screen, opt);
    MC_CHECK(r.converged, "UHF did not converge");
    std::printf("UHF converged in %d iterations (%.2f s)\n", r.iterations,
                wall.seconds());
    std::printf("  E(UHF)  = %18.10f Eh\n", r.energy);
    std::printf("  <S^2>   = %10.6f (exact %.4f)\n", r.s_squared,
                0.25 * (r.nalpha - r.nbeta) * (r.nalpha - r.nbeta + 2));
    return 0;
  }

  if (a.algorithm == "serial" || a.method == "mp2") {
    MC_CHECK(a.method == "rhf" || a.method == "mp2",
             "unknown method: " + a.method);
    ints::EriEngine eri(bs);
    ints::Screening screen(eri, 1e-10);
    scf::SerialFockBuilder builder(eri, screen);
    scf::ScfOptions opt;
    opt.charge = a.charge;
    opt.profile_path = a.profile;
    const scf::ScfResult r = scf::run_scf(mol, bs, builder, opt);
    MC_CHECK(r.converged, "SCF did not converge");
    std::printf("RHF converged in %d iterations (%.2f s, Fock %.2f s)\n",
                r.iterations, wall.seconds(), r.fock_build_seconds);
    std::printf("  E(RHF)  = %18.10f Eh\n", r.energy);
    const scf::DipoleMoment dm = scf::dipole_moment(mol, bs, r.density);
    std::printf("  dipole  = %10.4f D\n", dm.magnitude_debye());
    if (a.method == "mp2") {
      scf::AoIntegralTensor ao(eri, screen);
      const scf::Mp2Result mp2 =
          scf::mp2_energy(ao, r.mo_coefficients, r.orbital_energies,
                          mol.nelectrons(a.charge) / 2, r.energy);
      std::printf("  E(2)    = %18.10f Eh\n", mp2.correlation_energy);
      std::printf("  E(MP2)  = %18.10f Eh\n", mp2.total_energy);
    }
    return 0;
  }

  // Parallel RHF through the minimpi runtime.
  core::ParallelScfConfig cfg;
  cfg.algorithm = algorithm_of(a.algorithm);
  cfg.nranks = a.ranks;
  cfg.nthreads = a.threads;
  cfg.basis = a.basis;
  cfg.scf.charge = a.charge;
  cfg.scf.profile_path = a.profile;
  const core::ParallelScfResult res = core::run_parallel_scf(mol, cfg);
  MC_CHECK(res.scf.converged, "SCF did not converge");
  std::printf("RHF [%s, %d ranks x %d threads] converged in %d iterations "
              "(%.2f s, Fock %.2f s)\n",
              core::algorithm_name(cfg.algorithm).c_str(), a.ranks,
              a.threads, res.scf.iterations, res.wall_seconds,
              res.scf.fock_build_seconds);
  std::printf("  E(RHF)  = %18.10f Eh\n", res.scf.energy);
  std::printf("  load imbalance (max/mean quartets) = %.3f\n",
              res.load_imbalance());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse(argc, argv));
  } catch (const mc::Error& e) {
    std::fprintf(stderr, "mchf: error: %s\n", e.what());
    return 1;
  }
}
