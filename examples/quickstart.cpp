// Quickstart: restricted Hartree-Fock on a single molecule with the serial
// reference Fock builder.
//
//   $ quickstart [molecule] [basis]
//     molecule: water (default) | methane | benzene | h2
//     basis:    STO-3G (default) | 6-31G | 6-31G(d)
//
// Walks through the whole public API: geometry -> basis -> integrals ->
// screening -> SCF, then prints the energy decomposition, the orbital
// spectrum, and per-iteration convergence.

#include <cstdio>
#include <string>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "chem/element.hpp"
#include "common/error.hpp"
#include "ints/eri.hpp"
#include "ints/one_electron.hpp"
#include "ints/screening.hpp"
#include "scf/properties.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

using namespace mc;

namespace {

chem::Molecule pick_molecule(const std::string& name) {
  if (name == "water") return chem::builders::water();
  if (name == "methane") return chem::builders::methane();
  if (name == "benzene") return chem::builders::benzene();
  if (name == "h2") return chem::builders::h2();
  MC_CHECK(false, "unknown molecule: " + name +
                      " (try water, methane, benzene, h2)");
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mol_name = argc > 1 ? argv[1] : "water";
  const std::string basis_name = argc > 2 ? argv[2] : "STO-3G";

  const chem::Molecule mol = pick_molecule(mol_name);
  const basis::BasisSet bs = basis::BasisSet::build(mol, basis_name);
  std::printf("molecule: %s  (%zu atoms, %d electrons)\n", mol_name.c_str(),
              mol.natoms(), mol.nelectrons());
  std::printf("basis:    %s  (%zu shells, %zu basis functions)\n",
              basis_name.c_str(), bs.nshells(), bs.nbf());

  const ints::EriEngine eri(bs);
  const ints::Screening screen(eri, 1e-10);
  std::printf("screening: %zu of %zu shell quartets survive at 1e-10\n",
              screen.count_surviving_quartets(), screen.total_quartets());

  scf::SerialFockBuilder builder(eri, screen);
  scf::ScfCallbacks cb;
  cb.on_iteration = [](const scf::ScfIterationInfo& it) {
    std::printf("  iter %2d  E = %18.10f  dE = %10.2e  rms(D) = %8.2e\n",
                it.iteration, it.energy, it.delta_energy, it.density_rms);
  };
  const scf::ScfResult res = scf::run_scf(mol, bs, builder, {}, cb);

  MC_CHECK(res.converged, "SCF failed to converge");
  std::printf("\nconverged in %d iterations\n", res.iterations);
  std::printf("  nuclear repulsion : %18.10f Eh\n", res.nuclear_repulsion);
  std::printf("  electronic energy : %18.10f Eh\n", res.electronic_energy);
  std::printf("  total RHF energy  : %18.10f Eh\n", res.energy);
  std::printf("  Fock-build time   : %.3f s\n", res.fock_build_seconds);

  const int nocc = mol.nelectrons() / 2;
  std::printf("\norbital energies (Eh):\n");
  for (std::size_t k = 0; k < res.orbital_energies.size(); ++k) {
    std::printf("  %3zu  %14.6f  %s\n", k, res.orbital_energies[k],
                static_cast<int>(k) < nocc ? "occ" : "virt");
  }

  // Properties from the converged density.
  const scf::DipoleMoment dm = scf::dipole_moment(mol, bs, res.density);
  std::printf("\ndipole moment: %.4f D  (%.4f, %.4f, %.4f a.u.)\n",
              dm.magnitude_debye(), dm.total()[0], dm.total()[1],
              dm.total()[2]);

  const la::Matrix s_mat = ints::overlap_matrix(bs);
  const scf::MullikenAnalysis mull =
      scf::mulliken_analysis(mol, bs, res.density, s_mat);
  std::printf("Mulliken charges:\n");
  for (std::size_t a = 0; a < mol.natoms(); ++a) {
    std::printf("  %-2s %+.4f\n",
                chem::element_symbol(mol.atom(a).z).c_str(),
                mull.charges[a]);
  }
  return 0;
}
