// The paper's workload, end to end at laptop scale: Hartree-Fock on a
// graphene flake with all three parallel Fock-build algorithms, run as
// real SPMD jobs (minimpi ranks + OpenMP threads), comparing energies,
// Fock-build times, load balance and memory footprints.
//
//   $ graphene_hf [atoms_per_layer] [layers] [nranks] [nthreads]
//     defaults: 8 atoms, 1 layer, 2 ranks x 2 threads, STO-3G.
//
// (The paper's production datasets are 22-1008 atoms per layer in
// 6-31G(d); at that scale use the bench_* harnesses, which drive the
// calibrated KNL model instead of this host.)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "chem/builders.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/parallel_scf.hpp"

using namespace mc;

int main(int argc, char** argv) {
  const std::size_t atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const int layers = argc > 2 ? std::atoi(argv[2]) : 1;
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 2;
  const int nthreads = argc > 4 ? std::atoi(argv[4]) : 2;
  MC_CHECK(layers == 1 || layers == 2, "layers must be 1 or 2");
  MC_CHECK(atoms % 2 == 0, "use an even atom count (closed shell)");

  const chem::Molecule mol = layers == 2
                                 ? chem::builders::graphene_bilayer(atoms)
                                 : chem::builders::graphene_flake(atoms);
  std::printf("graphene flake: %zu C atoms, %d layer(s); %d ranks x %d "
              "threads\n\n",
              mol.natoms(), layers, nranks, nthreads);

  Table t({"algorithm", "energy (Eh)", "iters", "Fock time (s)",
           "load imbalance", "peak MB/rank"});
  double e_ref = 0.0;
  for (auto alg :
       {core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock}) {
    core::ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = nranks;
    cfg.nthreads = nthreads;
    cfg.basis = "STO-3G";
    const core::ParallelScfResult res = core::run_parallel_scf(mol, cfg);
    MC_CHECK(res.scf.converged, "SCF did not converge");
    if (e_ref == 0.0) {
      e_ref = res.scf.energy;
    } else {
      MC_CHECK(std::abs(res.scf.energy - e_ref) < 1e-7,
               "algorithms disagree on the energy!");
    }
    std::size_t peak = 0;
    for (std::size_t b : res.peak_bytes_per_rank) peak = std::max(peak, b);
    t.add_row({core::algorithm_name(alg), fmt_double(res.scf.energy, 8),
               std::to_string(res.scf.iterations),
               fmt_double(res.scf.fock_build_seconds, 3),
               fmt_double(res.load_imbalance(), 3),
               fmt_double(static_cast<double>(peak) / (1024.0 * 1024.0), 2)});
  }
  t.print(std::cout);
  std::printf("\nall three algorithms agree to 1e-7 Eh -- the paper's "
              "central correctness invariant.\n");
  return 0;
}
