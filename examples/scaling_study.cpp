// Scaling study with the calibrated KNL/Theta model: sweep node counts for
// any paper dataset and algorithm, printing the time breakdown the
// simulator attributes to ERI work, load imbalance, synchronization,
// buffer flushes and the gsumf reduction.
//
//   $ scaling_study [dataset] [algorithm] [nodes...]
//     dataset:   0.5nm | 1.0nm | 1.5nm | 2.0nm | 5.0nm   (default 1.0nm)
//     algorithm: mpi | private | shared                  (default shared)
//     nodes:     list of node counts                     (default 1..256)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;
using core::ScfAlgorithm;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "1.0nm";
  const std::string alg_name = argc > 2 ? argv[2] : "shared";
  ScfAlgorithm alg = ScfAlgorithm::kSharedFock;
  if (alg_name == "mpi") {
    alg = ScfAlgorithm::kMpiOnly;
  } else if (alg_name == "private") {
    alg = ScfAlgorithm::kPrivateFock;
  } else {
    MC_CHECK(alg_name == "shared",
             "algorithm must be mpi, private or shared");
  }
  std::vector<int> nodes;
  for (int a = 3; a < argc; ++a) nodes.push_back(std::atoi(argv[a]));
  if (nodes.empty()) nodes = {1, 4, 16, 64, 128, 256};

  std::printf("dataset %s, algorithm %s, quad-cache, 16 SCF iterations\n\n",
              dataset.c_str(), core::algorithm_name(alg).c_str());

  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  knlsim::Simulator sim(ctx.workload(dataset), ctx.machine(),
                        ctx.calibration());

  Table t({"nodes", "layout", "time (s)", "eff (%)", "ERI (s)",
           "imbalance (s)", "sync (s)", "flush (s)", "reduce (s)"});
  knlsim::SimResult base;
  int base_nodes = 0;
  for (int n : nodes) {
    knlsim::SimConfig cfg;
    cfg.algorithm = alg;
    cfg.nodes = n;
    const knlsim::SimResult r = sim.run(cfg);
    if (!r.feasible) {
      t.add_row({std::to_string(n), "-", "infeasible: " + r.infeasible_reason,
                 "-", "-", "-", "-", "-", "-"});
      continue;
    }
    if (base_nodes == 0) {
      base = r;
      base_nodes = n;
    }
    t.add_row({std::to_string(n),
               std::to_string(r.ranks_per_node) + "x" +
                   std::to_string(r.threads_per_rank),
               fmt_double(r.seconds, 1),
               fmt_double(r.efficiency_vs(base, base_nodes, n), 0),
               fmt_double(r.breakdown.eri_s, 1),
               fmt_double(r.breakdown.imbalance_s, 1),
               fmt_double(r.breakdown.sync_s, 2),
               fmt_double(r.breakdown.flush_s, 2),
               fmt_double(r.breakdown.reduction_s, 2)});
  }
  t.print(std::cout);
  return 0;
}
