// Memory-footprint study: the paper's eqs. 3a-3c evaluated for any dataset
// and node layout, next to the *measured* tracked-allocation peaks of a
// real run at laptop scale.
//
//   $ memory_footprint [nbf] [ranks] [threads]
//     defaults: the five paper datasets at the paper's layouts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "chem/builders.hpp"
#include "common/table.hpp"
#include "core/memory_model.hpp"
#include "core/parallel_scf.hpp"

using namespace mc;
using core::ScfAlgorithm;

namespace {

void custom_row(std::size_t nbf, int ranks, int threads) {
  Table t({"algorithm", "layout", "bytes/node", "GB/node"});
  for (auto alg : {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
                   ScfAlgorithm::kSharedFock}) {
    const core::NodeLayout layout =
        alg == ScfAlgorithm::kMpiOnly
            ? core::NodeLayout{ranks * threads, 1}
            : core::NodeLayout{ranks, threads};
    const double b = core::model_bytes_per_node(alg, nbf, layout);
    t.add_row({core::algorithm_name(alg),
               std::to_string(layout.ranks_per_node) + " x " +
                   std::to_string(layout.threads_per_rank),
               fmt_double(b, 0), fmt_double(b / (1 << 30), 2)});
  }
  t.print(std::cout);
}

void measured_small_run() {
  std::printf("\nmeasured peaks for a real run (water / 6-31G(d), 2 ranks "
              "x 2 threads):\n");
  Table t({"algorithm", "peak bytes/rank (measured)"});
  for (auto alg : {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
                   ScfAlgorithm::kSharedFock}) {
    core::ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 2;
    cfg.nthreads = 2;
    cfg.basis = "6-31G(d)";
    auto res = core::run_parallel_scf(chem::builders::water(), cfg);
    std::size_t peak = 0;
    for (std::size_t b : res.peak_bytes_per_rank) peak = std::max(peak, b);
    t.add_row({core::algorithm_name(alg), std::to_string(peak)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::size_t nbf = std::strtoul(argv[1], nullptr, 10);
    const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
    const int threads = argc > 3 ? std::atoi(argv[3]) : 64;
    std::printf("footprint model for N = %zu basis functions:\n", nbf);
    custom_row(nbf, ranks, threads);
    return 0;
  }

  std::printf("paper datasets, eqs. 3a-3c (MPI: 256x1, hybrid: 4x64):\n");
  for (const std::string& name : chem::builders::paper_dataset_names()) {
    const std::size_t nbf = chem::builders::paper_dataset_natoms(name) * 15;
    std::printf("\n-- %s (N = %zu) --\n", name.c_str(), nbf);
    custom_row(nbf, 4, 64);
  }
  measured_small_run();
  return 0;
}
