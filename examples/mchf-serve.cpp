// mchf-serve -- the HF-as-a-service demo driver (DESIGN.md section 15):
// stands up the multi-tenant SCF job server, feeds it a synthetic
// multi-tenant workload drawn from the built-in molecules, then submits a
// repeat batch so the warm caches show up in the numbers, and prints the
// shutdown summary. With --telemetry PATH every terminal job is streamed
// as one JSON line (the CI serving lane uploads that file as its
// artifact and renders it with tools/serve_summary.py).
//
//   mchf-serve [options]
//     --worlds N        pooled minimpi worlds          (default 2)
//     --ranks R         minimpi ranks per job          (default 2)
//     --threads T       OpenMP threads per rank        (default 1)
//     --jobs N          jobs in the first (cold) batch (default 8)
//     --repeats N       repeat batches over the same molecules (default 1)
//     --queue-depth N   admission bound                (default 64)
//     --tenant-cap N    max pending jobs per tenant, 0 = off (default 0)
//     --algorithm A     mpi | private | shared | dist  (default shared)
//     --basis B         basis for every job            (default STO-3G)
//     --telemetry PATH  append one JSON line per terminal job
//     --cold            disable warm starts (baseline mode)
//
// Example:
//   mchf-serve --worlds 2 --ranks 2 --jobs 8 --repeats 2
//              --telemetry serve_jobs.jsonl

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/builders.hpp"
#include "common/error.hpp"
#include "core/memory_model.hpp"
#include "serve/server.hpp"

using namespace mc;

namespace {

struct Args {
  int worlds = 2;
  int ranks = 2;
  int threads = 1;
  int jobs = 8;
  int repeats = 1;
  std::size_t queue_depth = 64;
  std::size_t tenant_cap = 0;
  std::string algorithm = "shared";
  std::string basis = "STO-3G";
  std::string telemetry;
  bool cold = false;
};

[[noreturn]] void usage_and_exit() {
  std::printf(
      "usage: mchf-serve [--worlds N] [--ranks R] [--threads T] [--jobs N]\n"
      "                  [--repeats N] [--queue-depth N] [--tenant-cap N]\n"
      "                  [--algorithm mpi|private|shared|dist] [--basis B]\n"
      "                  [--telemetry PATH] [--cold]\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (flag == "--worlds") a.worlds = std::atoi(value().c_str());
    else if (flag == "--ranks") a.ranks = std::atoi(value().c_str());
    else if (flag == "--threads") a.threads = std::atoi(value().c_str());
    else if (flag == "--jobs") a.jobs = std::atoi(value().c_str());
    else if (flag == "--repeats") a.repeats = std::atoi(value().c_str());
    else if (flag == "--queue-depth")
      a.queue_depth = std::strtoul(value().c_str(), nullptr, 10);
    else if (flag == "--tenant-cap")
      a.tenant_cap = std::strtoul(value().c_str(), nullptr, 10);
    else if (flag == "--algorithm") a.algorithm = value();
    else if (flag == "--basis") a.basis = value();
    else if (flag == "--telemetry") a.telemetry = value();
    else if (flag == "--cold") a.cold = true;
    else if (flag == "--help" || flag == "-h") usage_and_exit();
    else {
      std::printf("unknown flag: %s\n", flag.c_str());
      usage_and_exit();
    }
  }
  return a;
}

core::ScfAlgorithm algorithm_of(const std::string& name) {
  if (name == "mpi") return core::ScfAlgorithm::kMpiOnly;
  if (name == "private") return core::ScfAlgorithm::kPrivateFock;
  if (name == "shared") return core::ScfAlgorithm::kSharedFock;
  if (name == "dist") return core::ScfAlgorithm::kDistFock;
  MC_CHECK(false, "unknown algorithm: " + name);
  return core::ScfAlgorithm::kSharedFock;
}

struct Workload {
  const char* label;
  chem::Molecule mol;
};

std::vector<Workload> workload_pool() {
  std::vector<Workload> w;
  w.push_back({"water", chem::builders::water()});
  w.push_back({"methane", chem::builders::methane()});
  w.push_back({"h2", chem::builders::h2()});
  w.push_back({"benzene", chem::builders::benzene()});
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  serve::ServerOptions opt;
  opt.nworlds = args.worlds;
  opt.max_queue_depth = args.queue_depth;
  opt.max_pending_per_tenant = args.tenant_cap;
  opt.warm_start = !args.cold;
  opt.telemetry_path = args.telemetry;

  serve::ScfJobServer server(opt);
  const std::vector<Workload> pool = workload_pool();
  const char* tenants[] = {"alice", "bob", "carol"};

  std::vector<long> submitted_ids;
  long rejected = 0;
  const int batches = 1 + (args.repeats > 0 ? args.repeats : 0);
  for (int batch = 0; batch < batches; ++batch) {
    for (int j = 0; j < args.jobs; ++j) {
      const Workload& w = pool[static_cast<std::size_t>(j) % pool.size()];
      serve::JobSpec spec;
      spec.tenant = tenants[static_cast<std::size_t>(j) % 3];
      spec.priority = j % 3;  // mixed priorities exercise dequeue ordering
      spec.molecule_label = w.label;
      spec.mol = w.mol;
      spec.basis = args.basis;
      spec.algorithm = algorithm_of(args.algorithm);
      spec.nranks = args.ranks;
      spec.nthreads = args.threads;
      const serve::SubmitResult r = server.submit(spec);
      if (r.accepted) {
        submitted_ids.push_back(r.job_id);
      } else {
        ++rejected;
        std::printf("job %ld rejected: %s\n", r.job_id, r.reason.c_str());
      }
    }
    // Drain each batch before the next so repeats actually hit the caches.
    for (const long id : submitted_ids) (void)server.wait(id);
  }

  const serve::ServerSummary s = server.shutdown();
  std::printf("\nmchf-serve summary\n");
  std::printf("  worlds               %d (%d used)\n", args.worlds,
              server.worlds_used());
  std::printf("  submitted            %ld (accepted %ld, rejected %ld)\n",
              s.submitted, s.accepted, s.rejected);
  std::printf("  converged            %ld\n", s.converged);
  std::printf("  unconverged          %ld\n", s.unconverged);
  std::printf("  aborted              %ld\n", s.aborted);
  std::printf("  queue wait p50/p95   %.4f / %.4f s\n",
              s.queue_wait_p50_seconds, s.queue_wait_p95_seconds);
  std::printf("  run p50/p95          %.4f / %.4f s\n", s.run_p50_seconds,
              s.run_p95_seconds);
  std::printf("  setup cache          %ld hits / %ld misses\n",
              s.setup_cache_hits, s.setup_cache_misses);
  std::printf("  density cache        %ld hits / %ld misses\n",
              s.density_cache_hits, s.density_cache_misses);
  if (!args.telemetry.empty()) {
    std::printf("  telemetry            %s\n", args.telemetry.c_str());
  }

  // Serving smoke contract: every accepted job must reach a terminal
  // state, and nothing may abort unless faults were injected.
  const bool healthy =
      s.accepted == static_cast<long>(submitted_ids.size()) &&
      s.aborted == 0 && s.unconverged == 0;
  return healthy ? 0 : 1;
}
